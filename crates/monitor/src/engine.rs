//! The monitoring engine: deterministic batch windows over one shared
//! warm verdict memo, baseline lifecycle, and the anomaly event
//! machine.
//!
//! # Determinism contract
//!
//! A batch window of `K` requests is processed in ascending request-id
//! order regardless of arrival interleaving, and each request's
//! assessment exposes only memo-invariant quantities (verdicts,
//! logical check counts, truncation flags, slacks, census classes).
//! Memo warmth therefore changes *latency only* — the response stream,
//! the learned baseline, and every emitted event are bit-identical at
//! any batch size, thread count, and memo-bank state (covered by the
//! `service_vs_batch` differential suite).
//!
//! # Event machine
//!
//! Once the baseline locks, each folded request evaluates a fixed
//! trigger order (quarantine → margin z-scores → census classes →
//! truncation drift). A class fires only after `persistence`
//! consecutive triggering requests (1 for the discrete classes) and is
//! then silenced for `cooldown` further requests.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Mutex;

use csa_core::{check_task, ControlTask, StabilityChecker, VerdictMemo, MEMO_MAX_TASKS};
use csa_experiments::{
    classify_instance, classify_instance_on, generate_benchmark, instance_seed,
    parallel_map_catching, BenchmarkConfig, SearchConfig, WitnessKind,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::baseline::{Baseline, Lifecycle};
use crate::request::{AnomalyEvent, EventClass, Metric, Payload, Request, Response, Verdict};

/// Configuration of a [`MonitorEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Requests buffered before a batch is processed (1 = singleton).
    pub batch_window: usize,
    /// Worker threads for batch stages (0 = available parallelism).
    pub threads: usize,
    /// The assignment search deciding each admission.
    pub search: SearchConfig,
    /// Nominal samples required before the baseline can lock.
    pub min_samples: u64,
    /// Distinct `(n, profile)` cells required before the lock.
    pub min_coverage: usize,
    /// Fire a margin event at `z <= -z_threshold`.
    pub z_threshold: f64,
    /// Consecutive triggering requests required for continuous classes.
    pub persistence: u64,
    /// Requests a fired class stays silenced for.
    pub cooldown: u64,
    /// Trailing-window length for the truncation-rate drift detector.
    pub drift_window: usize,
    /// Drift fires at `trailing_rate - baseline_rate >= drift_threshold`.
    pub drift_threshold: f64,
    /// Maximum task-set memo tables kept warm (FIFO eviction).
    pub memo_tables: usize,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            batch_window: 8,
            threads: 1,
            search: SearchConfig::default(),
            min_samples: 64,
            min_coverage: 1,
            z_threshold: 3.0,
            persistence: 2,
            cooldown: 16,
            drift_window: 32,
            drift_threshold: 0.25,
            memo_tables: 512,
        }
    }
}

/// FNV-1a over every field of the task list (labels, execution times,
/// periods, and the raw `(a, b)` float bits): the memo bank's task-set
/// fingerprint. It is verified by full equality on every take, so a
/// collision can only cost warmth, never correctness.
pub(crate) fn task_fingerprint(tasks: &[ControlTask]) -> u64 {
    fn mix_bytes(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in tasks {
        h = mix_bytes(h, t.label().as_bytes());
        for v in [
            t.task().c_best().get(),
            t.task().c_worst().get(),
            t.task().period().get(),
            t.bound().a().to_bits(),
            t.bound().b().to_bits(),
        ] {
            h = mix_bytes(h, &v.to_le_bytes());
        }
    }
    h
}

/// Warm verdict-memo tables keyed by task-set fingerprint, FIFO-bounded.
#[derive(Debug, Default)]
pub(crate) struct MemoBank {
    tables: BTreeMap<u64, (Vec<ControlTask>, VerdictMemo)>,
    order: VecDeque<u64>,
    cap: usize,
}

impl MemoBank {
    fn new(cap: usize) -> MemoBank {
        MemoBank {
            tables: BTreeMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Removes and returns the memo for `fingerprint` — only if the
    /// stored task set is *equal* to `tasks` (seating a memo from a
    /// different set would silently corrupt verdicts).
    fn take(&mut self, fingerprint: u64, tasks: &[ControlTask]) -> Option<VerdictMemo> {
        match self.tables.remove(&fingerprint) {
            Some((stored, memo)) if stored == tasks => {
                self.order.retain(|&fp| fp != fingerprint);
                Some(memo)
            }
            Some(entry) => {
                // Fingerprint collision: keep the resident entry, treat
                // as a miss.
                self.tables.insert(fingerprint, entry);
                None
            }
            None => None,
        }
    }

    /// Stores (or refreshes) a memo table, evicting FIFO past the cap.
    fn put(&mut self, fingerprint: u64, tasks: Vec<ControlTask>, memo: VerdictMemo) {
        if self.tables.insert(fingerprint, (tasks, memo)).is_none() {
            self.order.push_back(fingerprint);
        }
        while self.tables.len() > self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    self.tables.remove(&old);
                }
                None => break,
            }
        }
    }

    fn len(&self) -> usize {
        self.tables.len()
    }
}

/// Persistence/cooldown state of one event class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct EventState {
    /// Consecutive triggering requests so far.
    pub(crate) streak: u64,
    /// Sequence number of the last fired event, if any.
    pub(crate) last_fired: Option<u64>,
}

/// Memo-invariant result of assessing one task set.
#[derive(Debug, Clone, PartialEq)]
struct Assessment {
    verdict: Verdict,
    checks: u64,
    truncated: bool,
    slack: Option<f64>,
    norm_slack: Option<f64>,
    anomalies: Vec<WitnessKind>,
}

/// Candidate trigger produced by one request, before persistence and
/// cooldown gating.
struct Trigger {
    class: EventClass,
    value: f64,
    z: Option<f64>,
    detail: String,
}

/// Per-request preparation computed sequentially before the parallel
/// stages (pure, so replay coordinates survive a stage panic).
struct Prep {
    n: usize,
    profile: String,
    replay_seed: u64,
}

/// One equal-task-set group inside a batch window.
struct Group {
    /// `None` for fingerprint-collision singletons (never memo-banked).
    fingerprint: Option<u64>,
    tasks: Vec<ControlTask>,
    /// Indices into the sorted batch that share this task set.
    positions: Vec<usize>,
}

/// The online monitoring engine. See the module docs for the
/// determinism and event-machine contracts.
#[derive(Debug)]
pub struct MonitorEngine {
    pub(crate) config: MonitorConfig,
    pub(crate) baseline: Baseline,
    pub(crate) events_state: BTreeMap<String, EventState>,
    /// Trailing truncation flags of assessed requests (drift detector).
    pub(crate) window: VecDeque<bool>,
    memo: MemoBank,
    pending: Vec<Request>,
    pub(crate) processed: u64,
    pub(crate) events_emitted: u64,
    pub(crate) quarantined: u64,
    logical_checks: u64,
    computed_checks: u64,
}

impl MonitorEngine {
    /// Creates an idle engine with an empty building-phase baseline.
    pub fn new(config: MonitorConfig) -> MonitorEngine {
        let baseline = Baseline::new(config.min_samples, config.min_coverage);
        let memo = MemoBank::new(config.memo_tables);
        MonitorEngine {
            config,
            baseline,
            events_state: BTreeMap::new(),
            window: VecDeque::new(),
            memo,
            pending: Vec::new(),
            processed: 0,
            events_emitted: 0,
            quarantined: 0,
            logical_checks: 0,
            computed_checks: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The learned baseline.
    pub fn baseline(&self) -> &Baseline {
        &self.baseline
    }

    /// Current baseline lifecycle.
    pub fn lifecycle(&self) -> Lifecycle {
        self.baseline.lifecycle()
    }

    /// Requests fully processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Anomaly events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Requests quarantined after a contained evaluation panic.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Requests buffered but not yet processed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Warm memo tables currently banked.
    pub fn memo_tables(&self) -> usize {
        self.memo.len()
    }

    /// Logical exact stability checks spent so far (memo-invariant).
    pub fn logical_checks(&self) -> u64 {
        self.logical_checks
    }

    /// Checks actually computed (logical minus warm-memo hits) —
    /// telemetry only, never part of a response.
    pub fn computed_checks(&self) -> u64 {
        self.computed_checks
    }

    /// Buffers one request; when the batch window fills, processes it
    /// and returns the window's responses (in ascending id order).
    pub fn submit(&mut self, request: Request) -> Vec<Response> {
        self.pending.push(request);
        if self.pending.len() >= self.config.batch_window.max(1) {
            self.process_batch()
        } else {
            Vec::new()
        }
    }

    /// Processes any buffered requests immediately (end of stream).
    pub fn flush(&mut self) -> Vec<Response> {
        if self.pending.is_empty() {
            Vec::new()
        } else {
            self.process_batch()
        }
    }

    fn process_batch(&mut self) -> Vec<Response> {
        let mut batch = std::mem::take(&mut self.pending);
        // Stable sort: ascending id, duplicate ids fall back to
        // arrival order (ids are documented unique).
        batch.sort_by_key(|r| r.id);

        // Sequential, pure prep: replay coordinates must exist even if
        // the parallel stages panic on this request.
        let preps: Vec<Prep> = batch.iter().map(prep_request).collect();

        // Stage A: materialize each task set (generator panics — e.g.
        // injected faults — are contained per request).
        let threads = self.config.threads;
        let materialized: Vec<Result<Vec<ControlTask>, String>> =
            parallel_map_catching(batch.len(), threads, |i| materialize(&batch[i]));

        // Group equal task sets so each group shares one warm checker.
        let groups = group_batch(&materialized);

        // Seat each group's warm memo (bank access is sequential).
        let seats: Vec<Mutex<Option<VerdictMemo>>> = groups
            .iter()
            .map(|g| {
                let memo = g
                    .fingerprint
                    .and_then(|fp| self.memo.take(fp, &g.tasks))
                    .unwrap_or_default();
                Mutex::new(Some(memo))
            })
            .collect();

        // Stage B: assess each group on one checker seeded with its
        // warm memo. Panics are contained per group.
        let search = self.config.search;
        let assessed: Vec<Result<GroupResult, String>> =
            parallel_map_catching(groups.len(), threads, |gi| {
                let group = &groups[gi];
                let memo = seats[gi]
                    .lock()
                    .ok()
                    .and_then(|mut seat| seat.take())
                    .unwrap_or_default();
                assess_group(group, memo, &search)
            });

        // Scatter group results back to per-request slots, bank the
        // warm memos, and count checker telemetry (groups and results
        // are consumed — no clones on the hot path).
        let mut slots: Vec<Option<Result<Assessment, String>>> =
            batch.iter().map(|_| None).collect();
        for (i, mat) in materialized.iter().enumerate() {
            if let Err(msg) = mat {
                slots[i] = Some(Err(msg.clone()));
            }
        }
        for (group, result) in groups.into_iter().zip(assessed) {
            match result {
                Ok(gr) => {
                    self.logical_checks += gr.logical;
                    self.computed_checks += gr.computed;
                    for (&pos, a) in group.positions.iter().zip(gr.assessments) {
                        slots[pos] = Some(Ok(a));
                    }
                    if let (Some(fp), Some(memo)) = (group.fingerprint, gr.memo) {
                        self.memo.put(fp, group.tasks, memo);
                    }
                }
                Err(msg) => {
                    for &pos in &group.positions {
                        slots[pos] = Some(Err(msg.clone()));
                    }
                }
            }
        }

        // Sequential fold: lifecycle, events, responses — in id order.
        batch
            .iter()
            .zip(preps)
            .zip(slots)
            .map(|((request, prep), slot)| {
                // Every materialized slot was scattered above; a missing
                // one can only mean an internal bookkeeping bug, so fail
                // closed as a quarantine rather than panic.
                let outcome =
                    slot.unwrap_or_else(|| Err("internal: request missing from batch".to_string()));
                self.fold_request(request, &prep, outcome)
            })
            .collect()
    }

    fn fold_request(
        &mut self,
        request: &Request,
        prep: &Prep,
        outcome: Result<Assessment, String>,
    ) -> Response {
        self.processed += 1;
        let seq = self.processed;
        // The lifecycle *entering* this request decides whether events
        // are live; the locking request itself emits none.
        let was_locked = self.baseline.lifecycle() == Lifecycle::Locked;

        let (assessment, quarantine) = match outcome {
            Ok(a) => (a, None),
            Err(msg) => {
                self.quarantined += 1;
                let detail = format!("{msg}; replay seed {:016x}", prep.replay_seed);
                (
                    Assessment {
                        verdict: Verdict::Quarantined,
                        checks: 0,
                        truncated: false,
                        slack: None,
                        norm_slack: None,
                        anomalies: Vec::new(),
                    },
                    Some(detail),
                )
            }
        };

        if quarantine.is_none() {
            // Drift window tracks every assessed request.
            self.window.push_back(assessment.truncated);
            while self.window.len() > self.config.drift_window.max(1) {
                self.window.pop_front();
            }
            if !was_locked {
                self.baseline.observe_truncation(assessment.truncated);
                if assessment.verdict == Verdict::Admit
                    && !assessment.truncated
                    && assessment.anomalies.is_empty()
                {
                    if let (Some(s), Some(ns)) = (assessment.slack, assessment.norm_slack) {
                        self.baseline.observe_nominal(prep.n, &prep.profile, s, ns);
                    }
                }
                self.baseline.try_lock();
            }
        }

        let events = if was_locked {
            self.evaluate_events(seq, request.id, prep, &assessment, quarantine.as_deref())
        } else {
            Vec::new()
        };
        self.events_emitted += events.len() as u64;

        Response {
            id: request.id,
            seq,
            verdict: assessment.verdict,
            n: prep.n,
            profile: prep.profile.clone(),
            checks: assessment.checks,
            truncated: assessment.truncated,
            slack: assessment.slack,
            norm_slack: assessment.norm_slack,
            anomalies: assessment.anomalies,
            quarantine,
            lifecycle: self.baseline.lifecycle(),
            events,
        }
    }

    /// Evaluates the fixed trigger order against the locked baseline,
    /// then applies persistence and cooldown per class.
    fn evaluate_events(
        &mut self,
        seq: u64,
        request_id: u64,
        prep: &Prep,
        assessment: &Assessment,
        quarantine: Option<&str>,
    ) -> Vec<AnomalyEvent> {
        let mut triggers: Vec<Trigger> = Vec::new();

        if let Some(detail) = quarantine {
            triggers.push(Trigger {
                class: EventClass::Quarantine,
                value: 1.0,
                z: None,
                detail: detail.to_string(),
            });
        } else {
            if assessment.verdict == Verdict::Admit {
                if let Some(cell) = self.baseline.cell(prep.n, &prep.profile).copied() {
                    for metric in Metric::ALL {
                        let value = match metric {
                            Metric::Slack => assessment.slack,
                            Metric::NormSlack => assessment.norm_slack,
                        };
                        let Some(value) = value else { continue };
                        let stats = cell.stats[metric.index()];
                        let z = (value - stats.mean) / stats.std.max(1e-12);
                        if z <= -self.config.z_threshold {
                            triggers.push(Trigger {
                                class: EventClass::MarginZ(metric),
                                value,
                                z: Some(z),
                                detail: format!(
                                    "n={} profile={} mean={} std={} samples={}",
                                    prep.n, prep.profile, stats.mean, stats.std, stats.count
                                ),
                            });
                        }
                    }
                }
            }
            for &kind in &assessment.anomalies {
                triggers.push(Trigger {
                    class: EventClass::CensusAnomaly(kind),
                    value: 1.0,
                    z: None,
                    detail: format!("census class {} at n={}", kind.name(), prep.n),
                });
            }
            if self.window.len() >= self.config.drift_window.max(1) {
                if let Some(base) = self.baseline.truncation_rate() {
                    let hits = self.window.iter().filter(|&&t| t).count();
                    let rate = hits as f64 / self.window.len() as f64;
                    if rate - base >= self.config.drift_threshold {
                        triggers.push(Trigger {
                            class: EventClass::TruncationDrift,
                            value: rate,
                            z: None,
                            detail: format!(
                                "trailing rate {rate} vs baseline {base} over {} requests",
                                self.window.len()
                            ),
                        });
                    }
                }
            }
        }

        // Classes silent this request lose their streak.
        let triggered: BTreeSet<String> = triggers.iter().map(|t| t.class.name()).collect();
        for (name, state) in self.events_state.iter_mut() {
            if !triggered.contains(name) {
                state.streak = 0;
            }
        }

        let mut events = Vec::new();
        for trigger in triggers {
            let required = match trigger.class {
                EventClass::MarginZ(_) | EventClass::TruncationDrift => {
                    self.config.persistence.max(1)
                }
                EventClass::CensusAnomaly(_) | EventClass::Quarantine => 1,
            };
            let state = self.events_state.entry(trigger.class.name()).or_default();
            state.streak += 1;
            let cooled = match state.last_fired {
                Some(last) => seq.saturating_sub(last) > self.config.cooldown,
                None => true,
            };
            if state.streak >= required && cooled {
                state.last_fired = Some(seq);
                state.streak = 0;
                events.push(AnomalyEvent {
                    seq,
                    request_id,
                    class: trigger.class,
                    value: trigger.value,
                    z: trigger.z,
                    detail: trigger.detail,
                });
            }
        }
        events
    }
}

/// Sequential pure prep (see [`Prep`]).
fn prep_request(request: &Request) -> Prep {
    let replay_seed = match &request.payload {
        Payload::Generated { seed, n, index, .. } => instance_seed(*seed, *n, *index),
        Payload::Inline { tasks } => task_fingerprint(tasks),
    };
    Prep {
        n: request.payload.n(),
        profile: request.payload.profile_key(),
        replay_seed,
    }
}

/// Materializes a request's task set (runs inside the catching stage;
/// injected faults and generator panics surface as that slot's `Err`).
fn materialize(request: &Request) -> Vec<ControlTask> {
    match &request.payload {
        Payload::Generated {
            profile,
            seed,
            n,
            index,
        } => {
            #[cfg(feature = "faultinject")]
            csa_faultinject::maybe_fault(*n, *index);
            let cfg = BenchmarkConfig::with_model(*n, *profile);
            let mut rng = StdRng::seed_from_u64(instance_seed(*seed, *n, *index));
            generate_benchmark(&cfg, &mut rng)
        }
        Payload::Inline { tasks } => tasks.clone(),
    }
}

/// Partitions a batch's materialized task sets into equality groups in
/// first-occurrence order. Fingerprint collisions between *unequal*
/// sets become unbanked singleton groups.
fn group_batch(materialized: &[Result<Vec<ControlTask>, String>]) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    let mut by_fp: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, mat) in materialized.iter().enumerate() {
        let Ok(tasks) = mat else { continue };
        let fp = task_fingerprint(tasks);
        let mut seated = false;
        if let Some(candidates) = by_fp.get(&fp) {
            for &gi in candidates {
                if groups[gi].tasks == *tasks {
                    groups[gi].positions.push(i);
                    seated = true;
                    break;
                }
            }
        }
        if !seated {
            let collision = by_fp.get(&fp).is_some_and(|c| !c.is_empty());
            let gi = groups.len();
            groups.push(Group {
                fingerprint: if collision { None } else { Some(fp) },
                tasks: tasks.clone(),
                positions: vec![i],
            });
            by_fp.entry(fp).or_default().push(gi);
        }
    }
    groups
}

/// One group's assessments plus its (returned) warm memo and checker
/// telemetry.
struct GroupResult {
    assessments: Vec<Assessment>,
    memo: Option<VerdictMemo>,
    logical: u64,
    computed: u64,
}

fn assess_group(group: &Group, memo: VerdictMemo, search: &SearchConfig) -> GroupResult {
    if group.tasks.len() > MEMO_MAX_TASKS {
        // Wide sets bypass the shared memo (bounded-width masks).
        let assessments = group
            .positions
            .iter()
            .map(|_| assess_wide(&group.tasks, search))
            .collect();
        return GroupResult {
            assessments,
            memo: None,
            logical: 0,
            computed: 0,
        };
    }
    let mut checker = StabilityChecker::with_memo(&group.tasks, memo);
    let assessments = group
        .positions
        .iter()
        .map(|_| assess_on(&mut checker, search))
        .collect();
    let logical = checker.logical_checks();
    let computed = checker.computed_checks();
    GroupResult {
        assessments,
        memo: Some(checker.into_memo()),
        logical,
        computed,
    }
}

/// Assesses one task set on a (possibly warm) checker. Everything
/// returned is memo-invariant.
fn assess_on(checker: &mut StabilityChecker<'_>, search: &SearchConfig) -> Assessment {
    let c = classify_instance_on(checker, search);
    let verdict = if c.solvable() {
        Verdict::Admit
    } else if c.truncated() {
        Verdict::Unknown
    } else {
        Verdict::Reject
    };
    let (slack, norm_slack) = match &c.outcome.assignment {
        Some(pa) => {
            let mut min_s: Option<f64> = None;
            let mut min_ns: Option<f64> = None;
            for i in 0..checker.len() {
                let v = checker.check(i, &pa.hp_indices(i));
                let b = checker.tasks()[i].bound().b();
                let ns = v.slack / b;
                min_s = Some(match min_s {
                    Some(cur) if cur < v.slack => cur,
                    _ => v.slack,
                });
                min_ns = Some(match min_ns {
                    Some(cur) if cur < ns => cur,
                    _ => ns,
                });
            }
            (min_s, min_ns)
        }
        None => (None, None),
    };
    Assessment {
        verdict,
        checks: c.outcome.stats.checks,
        truncated: c.outcome.stats.truncated,
        slack,
        norm_slack,
        anomalies: c.kinds(),
    }
}

/// Wide-set (`n > MEMO_MAX_TASKS`) assessment via the reference paths.
fn assess_wide(tasks: &[ControlTask], search: &SearchConfig) -> Assessment {
    let c = classify_instance(tasks, search);
    let verdict = if c.solvable() {
        Verdict::Admit
    } else if c.truncated() {
        Verdict::Unknown
    } else {
        Verdict::Reject
    };
    let (slack, norm_slack) = match &c.outcome.assignment {
        Some(pa) => {
            let mut min_s: Option<f64> = None;
            let mut min_ns: Option<f64> = None;
            for i in 0..tasks.len() {
                let v = check_task(tasks, i, &pa.hp_indices(i));
                let ns = v.slack / tasks[i].bound().b();
                min_s = Some(match min_s {
                    Some(cur) if cur < v.slack => cur,
                    _ => v.slack,
                });
                min_ns = Some(match min_ns {
                    Some(cur) if cur < ns => cur,
                    _ => ns,
                });
            }
            (min_s, min_ns)
        }
        None => (None, None),
    };
    Assessment {
        verdict,
        checks: c.outcome.stats.checks,
        truncated: c.outcome.stats.truncated,
        slack,
        norm_slack,
        anomalies: c.kinds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csa_experiments::PeriodModel;

    fn generated(id: u64, index: usize) -> Request {
        Request {
            id,
            payload: Payload::Generated {
                profile: PeriodModel::MarginTight,
                seed: 7,
                n: 4,
                index,
            },
        }
    }

    #[test]
    fn batch_size_does_not_change_responses() {
        let runs: Vec<Vec<Response>> = [1usize, 3, 16]
            .into_iter()
            .map(|batch_window| {
                let mut engine = MonitorEngine::new(MonitorConfig {
                    batch_window,
                    min_samples: 8,
                    ..MonitorConfig::default()
                });
                let mut out = Vec::new();
                for k in 0..16 {
                    out.extend(engine.submit(generated(k as u64 + 1, k)));
                }
                out.extend(engine.flush());
                out
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
        assert_eq!(runs[0].len(), 16);
    }

    #[test]
    fn warm_memo_changes_only_computed_checks() {
        let req = |id| Request {
            id,
            payload: Payload::Generated {
                profile: PeriodModel::GridSnapped,
                seed: 11,
                n: 4,
                index: 0,
            },
        };
        let mut engine = MonitorEngine::new(MonitorConfig {
            batch_window: 1,
            ..MonitorConfig::default()
        });
        let first = engine.submit(req(1));
        let cold_logical = engine.logical_checks();
        let cold_computed = engine.computed_checks();
        let second = engine.submit(req(2));
        assert_eq!(engine.memo_tables(), 1);
        // Identical task set: identical memo-invariant response fields.
        assert_eq!(first[0].verdict, second[0].verdict);
        assert_eq!(first[0].checks, second[0].checks);
        assert_eq!(first[0].slack, second[0].slack);
        // Logical work is memo-invariant (the warm pass "spent" the
        // same checks), but it recomputed strictly less.
        assert_eq!(engine.logical_checks(), 2 * cold_logical);
        assert!(engine.computed_checks() - cold_computed < cold_computed);
    }

    #[test]
    fn duplicate_task_sets_share_one_group() {
        let mut engine = MonitorEngine::new(MonitorConfig {
            batch_window: 4,
            ..MonitorConfig::default()
        });
        for id in 1..=3 {
            assert!(engine.submit(generated(id, 0)).is_empty());
        }
        let out = engine.submit(generated(4, 1));
        assert_eq!(out.len(), 4);
        // Two distinct task sets → two banked memo tables.
        assert_eq!(engine.memo_tables(), 2);
        assert_eq!(out[0].checks, out[1].checks);
        assert_eq!(out[0].verdict, out[2].verdict);
    }
}
