//! Learned baseline of nominal margin statistics.
//!
//! The monitor does not ship with thresholds for "normal" slack — it
//! learns them. The baseline passes through an explicit lifecycle:
//!
//! * **Building** — every nominal admission (admitted, not truncated,
//!   no census anomaly, not quarantined) contributes its margin metrics
//!   to the `(n, profile)` cell it belongs to; no events are emitted.
//! * **Locked** — once at least `min_samples` nominal samples spread
//!   over at least `min_coverage` cells have been seen, each cell's
//!   mean and population standard deviation are frozen and z-score
//!   monitoring begins.
//!
//! Determinism contract: the locked statistics are a pure function of
//! the *multiset* of observed samples. While building, raw samples are
//! stored; at lock time each cell's samples are sorted with `total_cmp`
//! and summed in sorted order, so the frozen bits are invariant under
//! any arrival reordering (a running mean would not be — float addition
//! is not associative).

use std::collections::BTreeMap;

use crate::request::Metric;

/// The baseline's lifecycle phase, echoed in every response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifecycle {
    /// Collecting nominal samples; no events are emitted.
    Building,
    /// Statistics frozen; anomaly events are live.
    Locked,
}

impl Lifecycle {
    /// Stable lowercase name used in responses and snapshots.
    pub fn name(self) -> &'static str {
        match self {
            Lifecycle::Building => "building",
            Lifecycle::Locked => "locked",
        }
    }

    /// Parses a [`Lifecycle::name`] back into the phase.
    pub fn parse(s: &str) -> Option<Lifecycle> {
        match s {
            "building" => Some(Lifecycle::Building),
            "locked" => Some(Lifecycle::Locked),
            _ => None,
        }
    }
}

impl std::fmt::Display for Lifecycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Frozen statistics of one metric in one `(n, profile)` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Number of nominal samples folded into the cell.
    pub count: u64,
    /// Sorted-order sample mean.
    pub mean: f64,
    /// Population standard deviation (sorted-order accumulation).
    pub std: f64,
}

/// Frozen per-cell statistics, one entry per [`Metric`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockedCell {
    /// Statistics indexed by [`Metric::index`].
    pub stats: [CellStats; 2],
}

/// Internal lifecycle state of the baseline.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum BaselineState {
    Building {
        /// Raw nominal samples per `(n, profile)` cell; each entry is
        /// one request's `[slack, norm_slack]` pair.
        cells: BTreeMap<(usize, String), Vec<[f64; 2]>>,
        /// Requests assessed while building (quarantines excluded).
        seen: u64,
        /// How many of those were truncated.
        truncated: u64,
    },
    Locked {
        cells: BTreeMap<(usize, String), LockedCell>,
        /// Nominal truncation rate observed during building.
        truncation_rate: f64,
        /// Total nominal samples frozen into the cells.
        samples: u64,
    },
}

/// The learned baseline: nominal margin statistics per `(n, profile)`
/// cell plus the building-phase truncation rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    pub(crate) min_samples: u64,
    pub(crate) min_coverage: usize,
    pub(crate) state: BaselineState,
}

impl Baseline {
    /// Creates an empty building-phase baseline that locks once
    /// `min_samples` nominal samples span `min_coverage` cells.
    pub fn new(min_samples: u64, min_coverage: usize) -> Baseline {
        Baseline {
            min_samples,
            min_coverage: min_coverage.max(1),
            state: BaselineState::Building {
                cells: BTreeMap::new(),
                seen: 0,
                truncated: 0,
            },
        }
    }

    /// Current lifecycle phase.
    pub fn lifecycle(&self) -> Lifecycle {
        match self.state {
            BaselineState::Building { .. } => Lifecycle::Building,
            BaselineState::Locked { .. } => Lifecycle::Locked,
        }
    }

    /// Total nominal samples collected (building) or frozen (locked).
    pub fn samples(&self) -> u64 {
        match &self.state {
            BaselineState::Building { cells, .. } => cells.values().map(|v| v.len() as u64).sum(),
            BaselineState::Locked { samples, .. } => *samples,
        }
    }

    /// Number of distinct `(n, profile)` cells observed/frozen.
    pub fn coverage(&self) -> usize {
        match &self.state {
            BaselineState::Building { cells, .. } => cells.len(),
            BaselineState::Locked { cells, .. } => cells.len(),
        }
    }

    /// Locked truncation rate, if locked.
    pub fn truncation_rate(&self) -> Option<f64> {
        match &self.state {
            BaselineState::Building { .. } => None,
            BaselineState::Locked {
                truncation_rate, ..
            } => Some(*truncation_rate),
        }
    }

    /// Frozen statistics for a cell, if locked and the cell is known.
    pub fn cell(&self, n: usize, profile: &str) -> Option<&LockedCell> {
        match &self.state {
            BaselineState::Building { .. } => None,
            BaselineState::Locked { cells, .. } => cells.get(&(n, profile.to_string())),
        }
    }

    /// Folds one nominal admission's finite margin metrics into its
    /// building cell. No-op once locked.
    pub(crate) fn observe_nominal(&mut self, n: usize, profile: &str, slack: f64, norm_slack: f64) {
        if let BaselineState::Building { cells, .. } = &mut self.state {
            if slack.is_finite() && norm_slack.is_finite() {
                cells
                    .entry((n, profile.to_string()))
                    .or_default()
                    .push([slack, norm_slack]);
            }
        }
    }

    /// Records one assessed (non-quarantined) building-phase request's
    /// truncation flag. No-op once locked.
    pub(crate) fn observe_truncation(&mut self, was_truncated: bool) {
        if let BaselineState::Building {
            seen, truncated, ..
        } = &mut self.state
        {
            *seen += 1;
            if was_truncated {
                *truncated += 1;
            }
        }
    }

    /// Locks the baseline if the building phase has accumulated at
    /// least `min_samples` nominal samples over at least `min_coverage`
    /// cells. Returns `true` when a lock transition happened.
    pub(crate) fn try_lock(&mut self) -> bool {
        let BaselineState::Building {
            cells,
            seen,
            truncated,
        } = &self.state
        else {
            return false;
        };
        let total: u64 = cells.values().map(|v| v.len() as u64).sum();
        if total < self.min_samples || cells.len() < self.min_coverage {
            return false;
        }
        let truncation_rate = if *seen == 0 {
            0.0
        } else {
            *truncated as f64 / *seen as f64
        };
        let locked: BTreeMap<(usize, String), LockedCell> = cells
            .iter()
            .map(|(key, samples)| (key.clone(), freeze_cell(samples)))
            .collect();
        self.state = BaselineState::Locked {
            cells: locked,
            truncation_rate,
            samples: total,
        };
        true
    }
}

/// Freezes one cell's raw samples into per-metric statistics. Samples
/// are sorted with `total_cmp` and accumulated in sorted order, making
/// the result a pure function of the sample multiset.
fn freeze_cell(samples: &[[f64; 2]]) -> LockedCell {
    let mut stats = [CellStats {
        count: 0,
        mean: 0.0,
        std: 0.0,
    }; 2];
    for metric in Metric::ALL {
        let idx = metric.index();
        let mut values: Vec<f64> = samples.iter().map(|pair| pair[idx]).collect();
        values.sort_by(|a, b| a.total_cmp(b));
        let count = values.len() as u64;
        if count == 0 {
            continue;
        }
        let sum: f64 = values.iter().sum();
        let mean = sum / count as f64;
        // Squared deviations accumulated in the same sorted order keep
        // the variance bit-stable under reordering too.
        let ssd: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
        let std = (ssd / count as f64).sqrt();
        stats[idx] = CellStats { count, mean, std };
    }
    LockedCell { stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_requires_samples_and_coverage() {
        let mut b = Baseline::new(3, 2);
        b.observe_nominal(4, "grid-snapped", 1.0, 0.5);
        b.observe_nominal(4, "grid-snapped", 2.0, 0.6);
        b.observe_nominal(4, "grid-snapped", 3.0, 0.7);
        // Enough samples, but only one cell.
        assert!(!b.try_lock());
        b.observe_nominal(6, "grid-snapped", 4.0, 0.8);
        assert!(b.try_lock());
        assert_eq!(b.lifecycle(), Lifecycle::Locked);
        assert_eq!(b.samples(), 4);
        assert_eq!(b.coverage(), 2);
        // Second lock attempt is a no-op.
        assert!(!b.try_lock());
    }

    #[test]
    fn locked_stats_are_arrival_order_invariant() {
        let values = [1.5, -0.25, 7.0, 3.25, 3.25, 0.0];
        let mut forward = Baseline::new(values.len() as u64, 1);
        for v in values {
            forward.observe_nominal(4, "inline", v, v / 10.0);
        }
        assert!(forward.try_lock());
        let mut reversed = Baseline::new(values.len() as u64, 1);
        for v in values.iter().rev() {
            reversed.observe_nominal(4, "inline", *v, *v / 10.0);
        }
        assert!(reversed.try_lock());
        assert_eq!(forward, reversed);
        let cell = forward.cell(4, "inline").copied();
        assert!(cell.is_some());
        let cell = cell.unwrap();
        assert_eq!(cell.stats[0].count, 6);
        assert!((cell.stats[0].mean - values.iter().sum::<f64>() / 6.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_rate_counts_building_requests_only() {
        let mut b = Baseline::new(2, 1);
        b.observe_truncation(true);
        b.observe_truncation(false);
        b.observe_truncation(false);
        b.observe_truncation(true);
        b.observe_nominal(4, "inline", 1.0, 0.1);
        b.observe_nominal(4, "inline", 2.0, 0.2);
        assert!(b.try_lock());
        assert_eq!(b.truncation_rate(), Some(0.5));
        // Locked baseline ignores further observations.
        b.observe_truncation(true);
        b.observe_nominal(4, "inline", -100.0, -100.0);
        assert_eq!(b.truncation_rate(), Some(0.5));
        assert_eq!(b.samples(), 2);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut b = Baseline::new(1, 1);
        b.observe_nominal(4, "inline", f64::NAN, 0.5);
        b.observe_nominal(4, "inline", 1.0, f64::INFINITY);
        assert_eq!(b.samples(), 0);
        assert!(!b.try_lock());
    }
}
