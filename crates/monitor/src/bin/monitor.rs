//! Stdin/stdout JSONL front-end of the monitoring service.
//!
//! Reads one request per line (see `csa_monitor::jsonl`), prints one
//! response line per request plus one line per fired anomaly event,
//! and optionally persists a crash-safe `csamon1` snapshot after every
//! batch. On a clean EOF it flushes the last partial batch, writes the
//! accumulated event log to `results/monitor_events.jsonl`, and prints
//! a summary to stderr.
//!
//! ```text
//! monitor [--batch N] [--threads N] [--search MODE] [--budget N]
//!         [--min-samples N] [--min-coverage N] [--z F]
//!         [--persistence N] [--cooldown N]
//!         [--snapshot-dir DIR] [--resume]
//! ```
//!
//! With `--resume`, requests the snapshot says were already processed
//! are skipped, so re-piping the same stream after a crash continues
//! the response sequence (and the final snapshot) byte-identically.

use std::io::BufRead;
use std::path::PathBuf;

use csa_experiments::{budget_flag, search_flag, threads_flag, write_atomic, SearchConfig};
use csa_monitor::jsonl::{event_line, parse_request, response_line};
use csa_monitor::snapshot::{self, SnapshotStale};
use csa_monitor::{MonitorConfig, MonitorEngine};

fn flag_u64(name: &str, default: u64) -> u64 {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("monitor: {name} needs an unsigned integer");
                std::process::exit(2);
            });
        }
    }
    default
}

fn flag_f64(name: &str, default: f64) -> f64 {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("monitor: {name} needs a number");
                std::process::exit(2);
            });
        }
    }
    default
}

fn flag_path(name: &str) -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            return Some(PathBuf::from(args.next().unwrap_or_else(|| {
                eprintln!("monitor: {name} needs a path");
                std::process::exit(2);
            })));
        }
    }
    None
}

fn flag_present(name: &str) -> bool {
    std::env::args().any(|arg| arg == name)
}

fn main() {
    let defaults = MonitorConfig::default();
    let config = MonitorConfig {
        batch_window: flag_u64("--batch", defaults.batch_window as u64) as usize,
        threads: threads_flag(),
        search: SearchConfig::new(search_flag(), budget_flag()),
        min_samples: flag_u64("--min-samples", defaults.min_samples),
        min_coverage: flag_u64("--min-coverage", defaults.min_coverage as u64) as usize,
        z_threshold: flag_f64("--z", defaults.z_threshold),
        persistence: flag_u64("--persistence", defaults.persistence),
        cooldown: flag_u64("--cooldown", defaults.cooldown),
        drift_window: flag_u64("--drift-window", defaults.drift_window as u64) as usize,
        drift_threshold: flag_f64("--drift-threshold", defaults.drift_threshold),
        memo_tables: flag_u64("--memo-tables", defaults.memo_tables as u64) as usize,
    };
    let snapshot_dir = flag_path("--snapshot-dir");
    let resume = flag_present("--resume");

    let mut engine = match (&snapshot_dir, resume) {
        (Some(dir), true) => match snapshot::load(config.clone(), dir) {
            Ok(engine) => {
                eprintln!(
                    "monitor: resumed at {} processed requests ({})",
                    engine.processed(),
                    engine.lifecycle()
                );
                engine
            }
            Err(SnapshotStale::Missing) => MonitorEngine::new(config),
            Err(stale) => {
                eprintln!("monitor: {stale}; starting fresh");
                MonitorEngine::new(config)
            }
        },
        _ => MonitorEngine::new(config),
    };

    // With --resume the caller re-pipes the stream from the start;
    // skip what the snapshot already covers.
    let mut skip = engine.processed();
    let mut event_log: Vec<String> = Vec::new();
    let emit = |responses: &[csa_monitor::Response], log: &mut Vec<String>| {
        for response in responses {
            println!("{}", response_line(response));
            for event in &response.events {
                let line = event_line(event);
                println!("{line}");
                log.push(line);
            }
        }
    };

    let stdin = std::io::stdin();
    for (lineno, line) in stdin.lock().lines().enumerate() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("monitor: stdin read failed: {e}");
                std::process::exit(2);
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err(why) => {
                eprintln!("monitor: malformed request on line {}: {why}", lineno + 1);
                std::process::exit(2);
            }
        };
        if skip > 0 {
            skip -= 1;
            continue;
        }
        let responses = engine.submit(request);
        if !responses.is_empty() {
            emit(&responses, &mut event_log);
            if let Some(dir) = &snapshot_dir {
                if let Err(e) = snapshot::save(&engine, dir) {
                    eprintln!("monitor: snapshot write failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    let responses = engine.flush();
    emit(&responses, &mut event_log);
    if let Some(dir) = &snapshot_dir {
        if let Err(e) = snapshot::save(&engine, dir) {
            eprintln!("monitor: snapshot write failed: {e}");
            std::process::exit(1);
        }
    }

    let log_path = PathBuf::from(csa_experiments::RESULTS_DIR).join("monitor_events.jsonl");
    let mut log_text = event_log.join("\n");
    if !log_text.is_empty() {
        log_text.push('\n');
    }
    if let Err(e) = write_atomic(&log_path, &log_text) {
        eprintln!("monitor: could not write {}: {e}", log_path.display());
        std::process::exit(1);
    }

    eprintln!(
        "monitor: {} requests, {} events, {} quarantined, lifecycle {}, {} logical checks ({} computed), {} warm memo tables",
        engine.processed(),
        engine.events_emitted(),
        engine.quarantined(),
        engine.lifecycle(),
        engine.logical_checks(),
        engine.computed_checks(),
        engine.memo_tables()
    );
}
