//! Seeded request-stream generator: prints the deterministic JSONL
//! request stream that `monitor` consumes.
//!
//! ```text
//! monitor_stream [--count N] [--seed N] [--profile NAME] [--n LIST]
//! ```
//!
//! The stream addresses instances exactly like the census sweep
//! (`instance_seed(seed, n, index)` with per-`n` indices), so piping it
//! into `monitor` replays the same benchmark instances a batch sweep at
//! the same coordinates would assess.

use csa_experiments::{profile_flag, task_counts_flag};
use csa_monitor::jsonl::request_line;
use csa_monitor::{generate_stream, StreamConfig};

fn flag_u64(name: &str, default: u64) -> u64 {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("monitor_stream: {name} needs an unsigned integer");
                std::process::exit(2);
            });
        }
    }
    default
}

fn main() {
    let defaults = StreamConfig::default();
    let config = StreamConfig {
        count: flag_u64("--count", defaults.count as u64) as usize,
        seed: flag_u64("--seed", defaults.seed),
        task_counts: task_counts_flag().unwrap_or(defaults.task_counts),
        profile: profile_flag(),
    };
    for request in generate_stream(&config) {
        println!("{}", request_line(&request));
    }
}
