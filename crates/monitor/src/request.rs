//! The service's typed request/response surface.
//!
//! A [`Request`] names one task-set/plant configuration — either by its
//! generator coordinates (the PR 2 `instance_seed` scheme, replayable
//! bit-for-bit) or as an inline task list in the witness serialization
//! syntax — and a [`Response`] carries the admission verdict, the
//! margin metrics, the anomaly census classification, and any
//! [`AnomalyEvent`]s the locked baseline raised.

use crate::baseline::Lifecycle;
use csa_core::ControlTask;
use csa_experiments::{PeriodModel, WitnessKind};

/// Profile key used for inline task payloads in baseline cells and
/// responses (generated payloads use their [`PeriodModel`] name).
pub const INLINE_PROFILE: &str = "inline";

/// One admission-control request: a stable id plus the configuration
/// payload. Within a batch window requests are processed in ascending
/// `id` order, which is what makes a window's results independent of
/// arrival interleaving — ids must be unique across the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-assigned unique id, echoed in the response.
    pub id: u64,
    /// The task-set configuration to assess.
    pub payload: Payload,
}

/// How a request names its task set.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Generator coordinates: the task set is
    /// `generate_benchmark(profile, n)` seeded by
    /// `instance_seed(seed, n, index)` — replayable bit-for-bit.
    Generated {
        /// Benchmark generator profile.
        profile: PeriodModel,
        /// Experiment base seed.
        seed: u64,
        /// Task count.
        n: usize,
        /// Instance index within the `(seed, n)` stream.
        index: usize,
    },
    /// An explicit task list (the witness task-list syntax carries it
    /// losslessly over JSONL).
    Inline {
        /// The complete task set.
        tasks: Vec<ControlTask>,
    },
}

impl Payload {
    /// Task count of the payload.
    pub fn n(&self) -> usize {
        match self {
            Payload::Generated { n, .. } => *n,
            Payload::Inline { tasks } => tasks.len(),
        }
    }

    /// Profile key used for baseline cells and responses.
    pub fn profile_key(&self) -> String {
        match self {
            Payload::Generated { profile, .. } => profile.name().to_string(),
            Payload::Inline { .. } => INLINE_PROFILE.to_string(),
        }
    }
}

/// The admission verdict of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The configured search found a valid assignment.
    Admit,
    /// The search decisively proved no valid assignment exists.
    Reject,
    /// The search exhausted its check budget without deciding — never
    /// to be read as a rejection (the portfolio truncation contract).
    Unknown,
    /// Evaluation panicked; the instance is excluded from the baseline
    /// and reported with its replayable seed.
    Quarantined,
}

impl Verdict {
    /// Every verdict, in documentation order.
    pub const ALL: [Verdict; 4] = [
        Verdict::Admit,
        Verdict::Reject,
        Verdict::Unknown,
        Verdict::Quarantined,
    ];

    /// Stable lowercase name used in response lines.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Admit => "admit",
            Verdict::Reject => "reject",
            Verdict::Unknown => "unknown",
            Verdict::Quarantined => "quarantined",
        }
    }

    /// Parses a [`Verdict::name`] back into the verdict.
    pub fn parse(s: &str) -> Option<Verdict> {
        Verdict::ALL.into_iter().find(|v| v.name() == s)
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The margin metrics the baseline learns per `(n, profile)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Minimum stability slack `b - L - aJ` over the set's tasks, in
    /// seconds, under the found assignment.
    Slack,
    /// Minimum *normalized* slack `(b - L - aJ) / b` — dimensionless
    /// distance to the stability cliff, comparable across plants.
    NormSlack,
}

impl Metric {
    /// Every metric, in storage order.
    pub const ALL: [Metric; 2] = [Metric::Slack, Metric::NormSlack];

    /// Stable kebab-case name used in event classes.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Slack => "slack",
            Metric::NormSlack => "norm-slack",
        }
    }

    /// Storage index of the metric in per-cell sample arrays.
    pub fn index(self) -> usize {
        match self {
            Metric::Slack => 0,
            Metric::NormSlack => 1,
        }
    }
}

/// The typed class of an anomaly event. Classes are the cooldown and
/// persistence key: two events of the same class are guaranteed more
/// than `cooldown` requests apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// A margin metric fell more than `z_threshold` standard deviations
    /// below its locked nominal mean.
    MarginZ(Metric),
    /// The census classification flagged an anomaly class on an
    /// admitted configuration.
    CensusAnomaly(WitnessKind),
    /// The trailing truncation rate drifted above the locked baseline
    /// rate by more than the configured threshold.
    TruncationDrift,
    /// An evaluation panic was contained and quarantined.
    Quarantine,
}

impl EventClass {
    /// Stable kebab-case class name (the cooldown/persistence key).
    pub fn name(self) -> String {
        match self {
            EventClass::MarginZ(m) => format!("margin-z-{}", m.name()),
            EventClass::CensusAnomaly(k) => format!("census-{}", k.name()),
            EventClass::TruncationDrift => "truncation-drift".to_string(),
            EventClass::Quarantine => "quarantine".to_string(),
        }
    }
}

/// One emitted anomaly event.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyEvent {
    /// Global sequence number of the request that fired the event.
    pub seq: u64,
    /// Id of that request.
    pub request_id: u64,
    /// The event class.
    pub class: EventClass,
    /// The triggering value (metric value, trailing rate, or 1 for
    /// discrete classes).
    pub value: f64,
    /// The z-score for [`EventClass::MarginZ`] events.
    pub z: Option<f64>,
    /// Human-readable context (replay seed for quarantines, baseline
    /// statistics for z-exceedances, ...).
    pub detail: String,
}

/// The service's answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Global 1-based sequence number in processing order.
    pub seq: u64,
    /// The admission verdict.
    pub verdict: Verdict,
    /// Task count of the assessed set.
    pub n: usize,
    /// Profile key (generator profile name, or `inline`).
    pub profile: String,
    /// Logical exact stability checks the configured search spent —
    /// memo-invariant, so identical to the batch sweep's count.
    pub checks: u64,
    /// Whether the search was truncated by its budget.
    pub truncated: bool,
    /// Minimum stability slack (seconds) under the found assignment;
    /// present only for admitted configurations.
    pub slack: Option<f64>,
    /// Minimum normalized slack; present only for admitted
    /// configurations.
    pub norm_slack: Option<f64>,
    /// Census anomaly classes triggered, in the historical collection
    /// order.
    pub anomalies: Vec<WitnessKind>,
    /// Quarantine detail (panic message plus the replayable `{:016x}`
    /// seed) when the verdict is [`Verdict::Quarantined`].
    pub quarantine: Option<String>,
    /// Baseline lifecycle *after* this request was folded in.
    pub lifecycle: Lifecycle,
    /// Events this request fired (always empty while Building).
    pub events: Vec<AnomalyEvent>,
}
