//! Hand-rolled JSONL wire format for the service binary.
//!
//! No serde in the tree: requests only ever carry strings and unsigned
//! integers, and responses are emitted with a fixed field order, so a
//! ~100-line scanner and deterministic formatters cover the whole
//! surface. `f64` values are printed with Rust's `Display` (which never
//! produces exponent notation, so the output is always valid JSON);
//! non-finite values serialize as `null`.
//!
//! Request lines:
//!
//! ```json
//! {"id":1,"profile":"margin-tight","seed":7,"n":4,"index":0}
//! {"id":2,"tasks":"t0:500:1000:10000:3ff3333333333333:3ed06849b86a12b9"}
//! ```

use std::collections::BTreeMap;

use csa_experiments::{parse_task_list, PeriodModel};

use crate::request::{AnomalyEvent, Payload, Request, Response};

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value: `Display` digits when finite
/// (never exponent notation), `null` otherwise.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn fmt_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => fmt_f64(v),
        None => "null".to_string(),
    }
}

/// A scanned request-object value: requests carry only strings and
/// unsigned integers.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JsonValue {
    Str(String),
    Num(u64),
}

/// Minimal single-line JSON object scanner for request lines.
fn parse_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut out = BTreeMap::new();
    if chars.next() != Some('{') {
        return Err("expected '{'".to_string());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            _ => return Err("expected '\"' starting a key".to_string()),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut digits = String::new();
                while let Some(c) = chars.peek() {
                    if c.is_ascii_digit() {
                        digits.push(*c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n: u64 = digits
                    .parse()
                    .map_err(|_| format!("number out of range for key {key:?}"))?;
                JsonValue::Num(n)
            }
            _ => return Err(format!("unsupported value for key {key:?}")),
        };
        out.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => {}
            Some('}') => break,
            _ => return Err("expected ',' or '}'".to_string()),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing content after object".to_string());
    }
    Ok(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".to_string());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or_else(|| "bad \\u escape".to_string())?;
                        code = code * 16 + d;
                    }
                    out.push(char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?);
                }
                _ => return Err("unsupported escape".to_string()),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".to_string()),
        }
    }
}

/// Parses one request line. Generated payloads carry `profile`, `seed`,
/// `n` and `index`; inline payloads carry `tasks` in the witness
/// task-list syntax.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let obj = parse_object(line)?;
    let num = |key: &str| -> Result<u64, String> {
        match obj.get(key) {
            Some(JsonValue::Num(n)) => Ok(*n),
            Some(_) => Err(format!("field {key:?} must be an unsigned integer")),
            None => Err(format!("missing field {key:?}")),
        }
    };
    let id = num("id")?;
    if let Some(JsonValue::Str(list)) = obj.get("tasks") {
        let tasks =
            parse_task_list(list).map_err(|why| format!("malformed inline task list: {why}"))?;
        if tasks.is_empty() {
            return Err("inline task list is empty".to_string());
        }
        return Ok(Request {
            id,
            payload: Payload::Inline { tasks },
        });
    }
    let profile = match obj.get("profile") {
        Some(JsonValue::Str(name)) => PeriodModel::parse(name)
            .ok_or_else(|| format!("unknown period-model profile {name:?}"))?,
        Some(_) => return Err("field \"profile\" must be a string".to_string()),
        None => return Err("request needs either \"tasks\" or \"profile\"".to_string()),
    };
    let n = num("n")? as usize;
    if n == 0 {
        return Err("field \"n\" must be positive".to_string());
    }
    Ok(Request {
        id,
        payload: Payload::Generated {
            profile,
            seed: num("seed")?,
            n,
            index: num("index")? as usize,
        },
    })
}

/// Serializes one request as a JSONL line (the exact syntax
/// [`parse_request`] accepts).
pub fn request_line(request: &Request) -> String {
    match &request.payload {
        Payload::Generated {
            profile,
            seed,
            n,
            index,
        } => format!(
            "{{\"id\":{},\"profile\":\"{}\",\"seed\":{},\"n\":{},\"index\":{}}}",
            request.id,
            profile.name(),
            seed,
            n,
            index
        ),
        Payload::Inline { tasks } => format!(
            "{{\"id\":{},\"tasks\":\"{}\"}}",
            request.id,
            escape(&csa_experiments::format_task_list(tasks))
        ),
    }
}

/// Serializes one response with the fixed field order
/// `id, seq, verdict, n, profile, checks, truncated, slack,
/// norm_slack, anomalies, [quarantine,] lifecycle, events`.
pub fn response_line(response: &Response) -> String {
    let anomalies = response
        .anomalies
        .iter()
        .map(|k| k.name())
        .collect::<Vec<_>>()
        .join(",");
    let quarantine = match &response.quarantine {
        Some(detail) => format!("\"quarantine\":\"{}\",", escape(detail)),
        None => String::new(),
    };
    format!(
        "{{\"id\":{},\"seq\":{},\"verdict\":\"{}\",\"n\":{},\"profile\":\"{}\",\"checks\":{},\"truncated\":{},\"slack\":{},\"norm_slack\":{},\"anomalies\":\"{}\",{}\"lifecycle\":\"{}\",\"events\":{}}}",
        response.id,
        response.seq,
        response.verdict.name(),
        response.n,
        escape(&response.profile),
        response.checks,
        response.truncated,
        fmt_opt_f64(response.slack),
        fmt_opt_f64(response.norm_slack),
        anomalies,
        quarantine,
        response.lifecycle.name(),
        response.events.len()
    )
}

/// Serializes one anomaly event as a JSONL line.
pub fn event_line(event: &AnomalyEvent) -> String {
    format!(
        "{{\"event\":\"{}\",\"seq\":{},\"id\":{},\"value\":{},\"z\":{},\"detail\":\"{}\"}}",
        event.class.name(),
        event.seq,
        event.request_id,
        fmt_f64(event.value),
        fmt_opt_f64(event.z),
        escape(&event.detail)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_request_round_trips() {
        let line = "{\"id\":9,\"profile\":\"margin-tight\",\"seed\":7,\"n\":4,\"index\":3}";
        let req = parse_request(line).unwrap();
        assert_eq!(req.id, 9);
        assert_eq!(
            req.payload,
            Payload::Generated {
                profile: PeriodModel::MarginTight,
                seed: 7,
                n: 4,
                index: 3,
            }
        );
        assert_eq!(request_line(&req), line);
        // Whitespace-tolerant.
        let spaced =
            "{ \"id\": 9 , \"profile\": \"margin-tight\", \"seed\":7,\"n\":4,\"index\":3 }";
        assert_eq!(parse_request(spaced).unwrap(), req);
    }

    #[test]
    fn inline_request_round_trips() {
        let tasks = vec![
            csa_core::ControlTask::from_parts(0, 500, 1_000, 10_000, 1.2, 4e-6).unwrap(),
            csa_core::ControlTask::from_parts(1, 800, 2_000, 20_000, 1.5, 9e-6).unwrap(),
        ];
        let req = Request {
            id: 2,
            payload: Payload::Inline {
                tasks: tasks.clone(),
            },
        };
        let parsed = parse_request(&request_line(&req)).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("", "expected '{'"),
            ("{\"id\":1}", "either"),
            (
                "{\"profile\":\"continuous\",\"seed\":1,\"n\":4,\"index\":0}",
                "missing field \"id\"",
            ),
            (
                "{\"id\":1,\"profile\":\"nope\",\"seed\":1,\"n\":4,\"index\":0}",
                "unknown period-model",
            ),
            (
                "{\"id\":1,\"profile\":\"continuous\",\"seed\":1,\"n\":0,\"index\":0}",
                "positive",
            ),
            ("{\"id\":1,\"tasks\":\"garbage\"}", "malformed inline"),
            (
                "{\"id\":1,\"profile\":\"continuous\",\"seed\":1,\"n\":4,\"index\":0}x",
                "trailing",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "line {line:?} gave {err:?}");
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-3.0), "-3");
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
