//! Online anomaly-monitoring service for control-task admission
//! (DESIGN.md §14).
//!
//! The batch sweeps in `csa-experiments` answer "how rare are the
//! paper's scheduling anomalies across a benchmark distribution?".
//! This crate answers the operational follow-up: *watch a stream of
//! task-set/plant configurations as they arrive and raise typed events
//! when one leaves the nominal envelope* — library-first (no network
//! dependency), with a stdin/stdout JSONL binary on top.
//!
//! * [`MonitorEngine`] — deterministic batch windows over one shared
//!   warm [`csa_core::VerdictMemo`]: a window of `K` requests yields
//!   bit-identical responses at any batch size, thread count, and memo
//!   warmth, because every exposed quantity is memo-invariant.
//! * [`Baseline`] — learned nominal margin statistics per
//!   `(n, profile)` cell with an explicit Building → Locked lifecycle;
//!   locked statistics are a pure function of the observed sample
//!   multiset (arrival-order invariant by sorted-order accumulation).
//! * [`AnomalyEvent`] / [`EventClass`] — z-score exceedance on margin
//!   slack, census anomaly-class hits, portfolio truncation-rate
//!   drift, and contained-panic quarantines, gated by persistence and
//!   cooldown.
//! * [`snapshot`] — crash-safe `csamon1` persistence (fingerprint
//!   header + atomic rename), excluding warmth so a cold resume
//!   continues the stream byte-identically.
//! * [`generate_stream`] — seeded request streams addressed exactly
//!   like the census sweep's instances, for differential pinning.
//!
//! # Example
//!
//! ```
//! use csa_monitor::{generate_stream, MonitorConfig, MonitorEngine, StreamConfig};
//!
//! let mut engine = MonitorEngine::new(MonitorConfig {
//!     batch_window: 4,
//!     min_samples: 8,
//!     ..MonitorConfig::default()
//! });
//! let mut responses = Vec::new();
//! for request in generate_stream(&StreamConfig { count: 16, ..StreamConfig::default() }) {
//!     responses.extend(engine.submit(request));
//! }
//! responses.extend(engine.flush());
//! assert_eq!(responses.len(), 16);
//! // Identical stream, any batch size: identical responses.
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod baseline;
mod engine;
pub mod jsonl;
mod request;
pub mod snapshot;
mod stream;

pub use baseline::{Baseline, CellStats, Lifecycle, LockedCell};
pub use engine::{MonitorConfig, MonitorEngine};
pub use request::{
    AnomalyEvent, EventClass, Metric, Payload, Request, Response, Verdict, INLINE_PROFILE,
};
pub use stream::{generate_stream, StreamConfig};
