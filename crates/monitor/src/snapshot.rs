//! Crash-safe persistence of the monitor's learned state.
//!
//! The snapshot (`csamon1`) freezes exactly the state that must survive
//! a restart for the response stream to continue bit-identically: the
//! baseline lifecycle (raw building samples or locked statistics), the
//! drift window, the per-class event machine, and the stream counters.
//! It deliberately **excludes** the warm memo bank and the
//! logical/computed check telemetry — warmth affects latency only, so
//! a resumed service converges to the same bytes with a cold bank.
//!
//! The fingerprint header pins every configuration knob that *does*
//! shape the stream (search mode, budget, lock thresholds, event
//! thresholds); `threads`, `batch_window` and `memo_tables` are omitted
//! because the determinism contract makes them irrelevant. Writes go
//! through `write_atomic` (tmp + rename), so a kill mid-snapshot leaves
//! either the old file or the new one, never a torn state — the
//! `service_faults` suite drives this with injected crashes.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};

use csa_experiments::write_atomic;

use crate::baseline::{Baseline, BaselineState, CellStats, Lifecycle, LockedCell};
use crate::engine::{EventState, MonitorConfig, MonitorEngine};
use crate::request::Metric;

/// Magic tag of the snapshot format.
pub const SNAPSHOT_TAG: &str = "csamon1";

/// File name of the snapshot inside a `--snapshot-dir`.
pub const SNAPSHOT_FILE: &str = "monitor.csamon";

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotStale {
    /// No snapshot file present.
    Missing,
    /// A fingerprint header field disagrees with the running
    /// configuration (named field).
    Mismatch(String),
    /// The file is not a well-formed `csamon1` snapshot.
    Malformed(String),
}

impl std::fmt::Display for SnapshotStale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotStale::Missing => f.write_str("no snapshot present"),
            SnapshotStale::Mismatch(field) => {
                write!(f, "snapshot fingerprint mismatch on {field}")
            }
            SnapshotStale::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

/// Path of the snapshot file inside `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

fn header(config: &MonitorConfig) -> String {
    format!(
        "{SNAPSHOT_TAG}|search={}|budget={}|min_samples={}|min_coverage={}|z={:016x}|persistence={}|cooldown={}|drift_window={}|drift_threshold={:016x}",
        config.search.mode.name(),
        config.search.budget,
        config.min_samples,
        config.min_coverage,
        config.z_threshold.to_bits(),
        config.persistence,
        config.cooldown,
        config.drift_window,
        config.drift_threshold.to_bits(),
    )
}

/// Serializes the engine's durable state as a `csamon1` document.
pub fn snapshot_string(engine: &MonitorEngine) -> String {
    let mut out = String::new();
    out.push_str(&header(&engine.config));
    out.push('\n');
    out.push_str(&format!(
        "m|{}|{}|{}|{}\n",
        engine.baseline.lifecycle().name(),
        engine.processed,
        engine.events_emitted,
        engine.quarantined
    ));
    match &engine.baseline.state {
        BaselineState::Building {
            cells,
            seen,
            truncated,
        } => {
            out.push_str(&format!("t|{seen}|{truncated}\n"));
            for ((n, profile), samples) in cells {
                let body = samples
                    .iter()
                    .map(|[s, ns]| format!("{:016x}:{:016x}", s.to_bits(), ns.to_bits()))
                    .collect::<Vec<_>>()
                    .join(",");
                out.push_str(&format!("b|{n}|{profile}|{body}\n"));
            }
        }
        BaselineState::Locked {
            cells,
            truncation_rate,
            samples,
        } => {
            out.push_str(&format!("T|{:016x}|{samples}\n", truncation_rate.to_bits()));
            for ((n, profile), cell) in cells {
                let s = cell.stats[Metric::Slack.index()];
                let ns = cell.stats[Metric::NormSlack.index()];
                out.push_str(&format!(
                    "L|{n}|{profile}|{}|{:016x}|{:016x}|{:016x}|{:016x}\n",
                    s.count,
                    s.mean.to_bits(),
                    s.std.to_bits(),
                    ns.mean.to_bits(),
                    ns.std.to_bits(),
                ));
            }
        }
    }
    let window: String = engine
        .window
        .iter()
        .map(|&t| if t { '1' } else { '0' })
        .collect();
    out.push_str(&format!("w|{window}\n"));
    for (class, state) in &engine.events_state {
        let last = match state.last_fired {
            Some(seq) => format!("{seq}"),
            None => "-".to_string(),
        };
        out.push_str(&format!("e|{class}|{}|{last}\n", state.streak));
    }
    out
}

/// Atomically writes the engine's snapshot into `dir`.
pub fn save(engine: &MonitorEngine, dir: &Path) -> std::io::Result<()> {
    write_atomic(&snapshot_path(dir), &snapshot_string(engine))
}

/// Restores an engine from snapshot text, verifying the configuration
/// fingerprint field by field (first mismatch is named).
pub fn restore(config: MonitorConfig, text: &str) -> Result<MonitorEngine, SnapshotStale> {
    let mut lines = text.lines();
    let head = lines
        .next()
        .ok_or_else(|| SnapshotStale::Malformed("empty file".to_string()))?;
    check_header(&config, head)?;

    let meta = lines
        .next()
        .ok_or_else(|| SnapshotStale::Malformed("missing state line".to_string()))?;
    let meta: Vec<&str> = meta.split('|').collect();
    if meta.len() != 5 || meta[0] != "m" {
        return Err(SnapshotStale::Malformed("bad state line".to_string()));
    }
    let lifecycle = Lifecycle::parse(meta[1])
        .ok_or_else(|| SnapshotStale::Malformed(format!("bad lifecycle {:?}", meta[1])))?;
    let processed = parse_u64(meta[2], "processed")?;
    let events_emitted = parse_u64(meta[3], "events_emitted")?;
    let quarantined = parse_u64(meta[4], "quarantined")?;

    let mut engine = MonitorEngine::new(config);
    engine.processed = processed;
    engine.events_emitted = events_emitted;
    engine.quarantined = quarantined;

    let mut building_cells: BTreeMap<(usize, String), Vec<[f64; 2]>> = BTreeMap::new();
    let mut locked_cells: BTreeMap<(usize, String), LockedCell> = BTreeMap::new();
    let mut totals: Option<(u64, u64)> = None;
    let mut locked_totals: Option<(f64, u64)> = None;
    let mut window = VecDeque::new();
    let mut events_state = BTreeMap::new();

    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        match fields[0] {
            "t" if fields.len() == 3 => {
                totals = Some((
                    parse_u64(fields[1], "seen")?,
                    parse_u64(fields[2], "truncated")?,
                ));
            }
            "T" if fields.len() == 3 => {
                locked_totals = Some((
                    parse_f64_bits(fields[1], "truncation_rate")?,
                    parse_u64(fields[2], "samples")?,
                ));
            }
            "b" if fields.len() == 4 => {
                let n = parse_u64(fields[1], "cell n")? as usize;
                let mut samples = Vec::new();
                if !fields[3].is_empty() {
                    for pair in fields[3].split(',') {
                        let (s, ns) = pair.split_once(':').ok_or_else(|| {
                            SnapshotStale::Malformed("bad sample pair".to_string())
                        })?;
                        samples.push([
                            parse_f64_bits(s, "sample slack")?,
                            parse_f64_bits(ns, "sample norm-slack")?,
                        ]);
                    }
                }
                building_cells.insert((n, fields[2].to_string()), samples);
            }
            "L" if fields.len() == 8 => {
                let n = parse_u64(fields[1], "cell n")? as usize;
                let count = parse_u64(fields[3], "cell count")?;
                let cell = LockedCell {
                    stats: [
                        CellStats {
                            count,
                            mean: parse_f64_bits(fields[4], "slack mean")?,
                            std: parse_f64_bits(fields[5], "slack std")?,
                        },
                        CellStats {
                            count,
                            mean: parse_f64_bits(fields[6], "norm-slack mean")?,
                            std: parse_f64_bits(fields[7], "norm-slack std")?,
                        },
                    ],
                };
                locked_cells.insert((n, fields[2].to_string()), cell);
            }
            "w" if fields.len() == 2 => {
                for c in fields[1].chars() {
                    match c {
                        '0' => window.push_back(false),
                        '1' => window.push_back(true),
                        _ => {
                            return Err(SnapshotStale::Malformed(
                                "bad drift-window bit".to_string(),
                            ))
                        }
                    }
                }
            }
            "e" if fields.len() == 4 => {
                let last_fired = if fields[3] == "-" {
                    None
                } else {
                    Some(parse_u64(fields[3], "last_fired")?)
                };
                events_state.insert(
                    fields[1].to_string(),
                    EventState {
                        streak: parse_u64(fields[2], "streak")?,
                        last_fired,
                    },
                );
            }
            tag => {
                return Err(SnapshotStale::Malformed(format!(
                    "unknown line tag {tag:?}"
                )));
            }
        }
    }

    let min_samples = engine.config.min_samples;
    let min_coverage = engine.config.min_coverage;
    engine.baseline = match lifecycle {
        Lifecycle::Building => {
            let (seen, truncated) =
                totals.ok_or_else(|| SnapshotStale::Malformed("missing 't' line".to_string()))?;
            Baseline {
                min_samples,
                min_coverage: min_coverage.max(1),
                state: BaselineState::Building {
                    cells: building_cells,
                    seen,
                    truncated,
                },
            }
        }
        Lifecycle::Locked => {
            let (truncation_rate, samples) = locked_totals
                .ok_or_else(|| SnapshotStale::Malformed("missing 'T' line".to_string()))?;
            Baseline {
                min_samples,
                min_coverage: min_coverage.max(1),
                state: BaselineState::Locked {
                    cells: locked_cells,
                    truncation_rate,
                    samples,
                },
            }
        }
    };
    engine.window = window;
    engine.events_state = events_state;
    Ok(engine)
}

/// Loads and restores the snapshot inside `dir`, if any.
pub fn load(config: MonitorConfig, dir: &Path) -> Result<MonitorEngine, SnapshotStale> {
    let path = snapshot_path(dir);
    match std::fs::read_to_string(&path) {
        Ok(text) => restore(config, &text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(SnapshotStale::Missing),
        Err(e) => Err(SnapshotStale::Malformed(format!("unreadable: {e}"))),
    }
}

fn check_header(config: &MonitorConfig, head: &str) -> Result<(), SnapshotStale> {
    let expected = header(config);
    if head == expected {
        return Ok(());
    }
    let stored: Vec<&str> = head.split('|').collect();
    let wanted: Vec<&str> = expected.split('|').collect();
    if stored.first() != Some(&SNAPSHOT_TAG) {
        return Err(SnapshotStale::Malformed(format!(
            "unknown tag {:?}",
            stored.first().copied().unwrap_or("")
        )));
    }
    for want in &wanted[1..] {
        let Some((field, _)) = want.split_once('=') else {
            continue;
        };
        let found = stored[1..]
            .iter()
            .find(|s| s.split_once('=').map(|(f, _)| f) == Some(field));
        match found {
            Some(got) if got == want => {}
            _ => return Err(SnapshotStale::Mismatch(field.to_string())),
        }
    }
    Err(SnapshotStale::Mismatch("header layout".to_string()))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, SnapshotStale> {
    s.parse()
        .map_err(|_| SnapshotStale::Malformed(format!("bad {what}: {s:?}")))
}

fn parse_f64_bits(s: &str, what: &str) -> Result<f64, SnapshotStale> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| SnapshotStale::Malformed(format!("bad {what}: {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Payload, Request};
    use csa_experiments::PeriodModel;

    fn run_engine(count: usize, min_samples: u64) -> MonitorEngine {
        let mut engine = MonitorEngine::new(MonitorConfig {
            batch_window: 4,
            min_samples,
            ..MonitorConfig::default()
        });
        for k in 0..count {
            engine.submit(Request {
                id: k as u64 + 1,
                payload: Payload::Generated {
                    profile: PeriodModel::MarginTight,
                    seed: 7,
                    n: 4,
                    index: k,
                },
            });
        }
        engine.flush();
        engine
    }

    #[test]
    fn building_snapshot_round_trips() {
        let engine = run_engine(6, 1_000);
        assert_eq!(engine.lifecycle(), Lifecycle::Building);
        let text = snapshot_string(&engine);
        let restored = restore(engine.config().clone(), &text).unwrap();
        assert_eq!(snapshot_string(&restored), text);
        assert_eq!(restored.processed(), engine.processed());
        assert_eq!(restored.baseline(), engine.baseline());
    }

    #[test]
    fn locked_snapshot_round_trips() {
        let engine = run_engine(16, 4);
        assert_eq!(engine.lifecycle(), Lifecycle::Locked);
        let text = snapshot_string(&engine);
        let restored = restore(engine.config().clone(), &text).unwrap();
        assert_eq!(snapshot_string(&restored), text);
        assert_eq!(restored.baseline(), engine.baseline());
    }

    #[test]
    fn fingerprint_mismatch_names_the_field() {
        let engine = run_engine(2, 1_000);
        let text = snapshot_string(&engine);
        let mut other = engine.config().clone();
        other.cooldown += 1;
        assert_eq!(
            restore(other, &text).err(),
            Some(SnapshotStale::Mismatch("cooldown".to_string()))
        );
        // Latency-only knobs are not fingerprinted.
        let mut latency_only = engine.config().clone();
        latency_only.threads = 7;
        latency_only.batch_window = 1;
        latency_only.memo_tables = 3;
        assert!(restore(latency_only, &text).is_ok());
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        let engine = run_engine(2, 1_000);
        let config = engine.config().clone();
        assert!(matches!(
            restore(config.clone(), ""),
            Err(SnapshotStale::Malformed(_))
        ));
        assert!(matches!(
            restore(config.clone(), "csaw1|nope"),
            Err(SnapshotStale::Malformed(_))
        ));
        let good = snapshot_string(&engine);
        let truncated: String = good.lines().take(1).collect();
        assert!(matches!(
            restore(config, &truncated),
            Err(SnapshotStale::Malformed(_))
        ));
    }
}
