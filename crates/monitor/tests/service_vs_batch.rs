//! Differential pinning: the streaming service must produce exactly
//! the batch analysis's verdicts.
//!
//! The committed witness corpus (every pathological instance the
//! regression sweeps ever found) is replayed through the service as
//! inline requests, and each response is compared field-by-field
//! against an independent `classify_instance` run on the same task
//! set — then the whole response stream is checked bit-identical at
//! every batch size and thread count, both as typed values and as
//! serialized JSONL.

use csa_experiments::{parse_witness_corpus, SearchConfig, Witness};
use csa_monitor::jsonl::response_line;
use csa_monitor::{MonitorConfig, MonitorEngine, Payload, Request, Response, Verdict};

const CORPUS: &str = include_str!("../../experiments/tests/data/witness_corpus.txt");

fn corpus() -> Vec<Witness> {
    let witnesses = parse_witness_corpus(CORPUS).expect("corpus parses");
    assert!(witnesses.len() >= 40, "corpus unexpectedly small");
    witnesses
}

/// Runs the whole corpus through a fresh service with the given batch
/// window and thread count.
fn run_service(witnesses: &[Witness], batch_window: usize, threads: usize) -> Vec<Response> {
    let mut engine = MonitorEngine::new(MonitorConfig {
        batch_window,
        threads,
        // Keep the baseline building for the whole replay so the
        // response stream carries no run-length-dependent events.
        min_samples: u64::MAX,
        ..MonitorConfig::default()
    });
    let mut responses = Vec::new();
    for (i, witness) in witnesses.iter().enumerate() {
        responses.extend(engine.submit(Request {
            id: i as u64 + 1,
            payload: Payload::Inline {
                tasks: witness.tasks.clone(),
            },
        }));
    }
    responses.extend(engine.flush());
    responses
}

#[test]
fn service_verdicts_equal_batch_classification() {
    let witnesses = corpus();
    let responses = run_service(&witnesses, 8, 1);
    assert_eq!(responses.len(), witnesses.len());
    let search = SearchConfig::default();
    for (witness, response) in witnesses.iter().zip(&responses) {
        let reference = csa_experiments::classify_instance(&witness.tasks, &search);
        let expected = if reference.solvable() {
            Verdict::Admit
        } else if reference.truncated() {
            Verdict::Unknown
        } else {
            Verdict::Reject
        };
        assert_eq!(response.verdict, expected, "witness {witness:?}");
        assert_eq!(response.checks, reference.outcome.stats.checks);
        assert_eq!(response.truncated, reference.outcome.stats.truncated);
        assert_eq!(response.anomalies, reference.kinds(), "witness {witness:?}");
        assert_eq!(response.n, witness.tasks.len());
        assert_eq!(response.profile, csa_monitor::INLINE_PROFILE);
        assert!(response.quarantine.is_none());
        // The corpus records pathologies: the recorded class must
        // resurface in the service's census classification whenever
        // the instance admits (anomaly classes are defined relative to
        // a found assignment; unsolvable instances legitimately report
        // none).
        if response.verdict == Verdict::Admit {
            assert!(
                !response.anomalies.is_empty(),
                "admitted corpus witness lost its anomaly: {witness:?}"
            );
        }
    }
}

#[test]
fn responses_are_bit_identical_at_any_batch_size_and_thread_count() {
    let witnesses = corpus();
    let reference = run_service(&witnesses, 1, 1);
    let reference_jsonl: Vec<String> = reference.iter().map(response_line).collect();
    for batch_window in [1usize, 7, witnesses.len()] {
        for threads in [1usize, 4] {
            let run = run_service(&witnesses, batch_window, threads);
            assert_eq!(
                run, reference,
                "typed divergence at batch={batch_window} threads={threads}"
            );
            let jsonl: Vec<String> = run.iter().map(response_line).collect();
            assert_eq!(
                jsonl, reference_jsonl,
                "serialized divergence at batch={batch_window} threads={threads}"
            );
        }
    }
}

#[test]
fn replaying_generated_coordinates_matches_inline_replay() {
    // Witness lines carry both the generator coordinates and the
    // materialized task set; the service must treat them identically
    // (same assessment, same checks) whichever form arrives.
    let witnesses = corpus();
    let inline = run_service(&witnesses, 8, 1);
    let mut engine = MonitorEngine::new(MonitorConfig {
        batch_window: 8,
        min_samples: u64::MAX,
        ..MonitorConfig::default()
    });
    let mut generated = Vec::new();
    for (i, w) in witnesses.iter().enumerate() {
        generated.extend(engine.submit(Request {
            id: i as u64 + 1,
            payload: Payload::Generated {
                profile: w.profile,
                seed: w.seed,
                n: w.n,
                index: w.index,
            },
        }));
    }
    generated.extend(engine.flush());
    assert_eq!(generated.len(), inline.len());
    for (g, i) in generated.iter().zip(&inline) {
        assert_eq!(g.verdict, i.verdict);
        assert_eq!(g.checks, i.checks);
        assert_eq!(g.truncated, i.truncated);
        assert_eq!(g.slack, i.slack);
        assert_eq!(g.norm_slack, i.norm_slack);
        assert_eq!(g.anomalies, i.anomalies);
    }
}
