//! Fault-injected service tests (require `--features faultinject`):
//! crash-safe snapshot resume and panic quarantine through the real
//! `monitor` binary, driven over JSONL exactly as an operator would.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use csa_experiments::instance_seed;
use csa_monitor::jsonl::request_line;
use csa_monitor::{generate_stream, StreamConfig};

/// Temp workspace removed on drop (also on test panic).
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "csa-monitor-{tag}-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch { dir }
    }

    fn path(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn stream_text(count: usize) -> String {
    let stream = generate_stream(&StreamConfig {
        count,
        ..StreamConfig::default()
    });
    let mut text = stream
        .iter()
        .map(request_line)
        .collect::<Vec<_>>()
        .join("\n");
    text.push('\n');
    text
}

/// Runs the `monitor` binary in `dir` with `stdin` text and the given
/// extra args; `fault` sets `CSA_FAULT_INJECT`.
fn run_monitor(dir: &Path, stdin: &str, args: &[&str], fault: Option<&str>) -> Output {
    use std::io::Write;
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_monitor"));
    cmd.args(["--batch", "4", "--min-samples", "8"])
        .args(args)
        .current_dir(dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped());
    match fault {
        Some(spec) => {
            cmd.env("CSA_FAULT_INJECT", spec);
        }
        None => {
            cmd.env_remove("CSA_FAULT_INJECT");
        }
    }
    let mut child = cmd.spawn().expect("spawn monitor");
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(stdin.as_bytes())
        .expect("write stream");
    child.wait_with_output().expect("monitor exit")
}

#[test]
fn injected_panic_becomes_replayable_quarantine_response() {
    let scratch = Scratch::new("quarantine");
    let stream = stream_text(16);
    // Default stream: n = 4, ids 1.. with index = id - 1; fault the
    // instance at index 6.
    let out = run_monitor(scratch.path(), &stream, &[], Some("panic:4:6"));
    assert!(
        out.status.success(),
        "monitor must contain the panic: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let quarantined: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("\"verdict\":\"quarantined\""))
        .collect();
    assert_eq!(quarantined.len(), 1, "stdout:\n{stdout}");
    assert!(quarantined[0].contains("\"id\":7"));
    // The quarantine detail carries the panic message and the replay
    // seed of exactly that instance.
    let seed = format!("replay seed {:016x}", instance_seed(7, 4, 6));
    assert!(
        quarantined[0].contains("injected panic"),
        "{}",
        quarantined[0]
    );
    assert!(quarantined[0].contains(&seed), "{}", quarantined[0]);
    // Every other request was assessed normally.
    assert_eq!(
        stdout
            .lines()
            .filter(|l| l.contains("\"verdict\":"))
            .count(),
        16
    );
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(summary.contains("1 quarantined"), "{summary}");
}

#[test]
fn crash_mid_stream_resumes_to_byte_identical_snapshot() {
    let baseline = Scratch::new("uninterrupted");
    let stream = stream_text(24);

    // Reference: the full stream, no faults.
    let out = run_monitor(baseline.path(), &stream, &["--snapshot-dir", "snap"], None);
    assert!(out.status.success());
    let want_stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let want_snapshot =
        std::fs::read_to_string(baseline.path().join("snap/monitor.csamon")).expect("snapshot");

    // Interrupted: abort while materializing instance index 13 (inside
    // the 4th batch), then resume with the same stream.
    let crashed = Scratch::new("crashed");
    let out = run_monitor(
        crashed.path(),
        &stream,
        &["--snapshot-dir", "snap"],
        Some("abort:4:13"),
    );
    assert!(!out.status.success(), "abort must kill the process");
    let partial_stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let partial_snapshot =
        std::fs::read_to_string(crashed.path().join("snap/monitor.csamon")).expect("partial");
    assert!(want_snapshot != partial_snapshot || partial_stdout.is_empty());

    let out = run_monitor(
        crashed.path(),
        &stream,
        &["--snapshot-dir", "snap", "--resume"],
        None,
    );
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let resumed_stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let resumed_snapshot =
        std::fs::read_to_string(crashed.path().join("snap/monitor.csamon")).expect("resumed");

    // The final learned state is byte-identical to the uninterrupted
    // run, and the concatenated response stream matches it too.
    assert_eq!(resumed_snapshot, want_snapshot);
    let combined = format!("{partial_stdout}{resumed_stdout}");
    assert_eq!(combined, want_stdout);
}

#[test]
fn resume_with_changed_fingerprint_starts_fresh() {
    let scratch = Scratch::new("stale");
    let stream = stream_text(8);
    let out = run_monitor(scratch.path(), &stream, &["--snapshot-dir", "snap"], None);
    assert!(out.status.success());

    // A different z-threshold invalidates the learned state.
    let out = run_monitor(
        scratch.path(),
        &stream,
        &["--snapshot-dir", "snap", "--resume", "--z", "2.5"],
        None,
    );
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("mismatch on z") && stderr.contains("starting fresh"),
        "{stderr}"
    );
    // Fresh run processes all 8 requests again.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().filter(|l| l.contains("\"seq\":")).count(), 8);
}
