//! Property tests of the baseline lifecycle and the event machine.
//!
//! Three invariants from DESIGN.md §14:
//!
//! 1. **Building silence** — while the baseline is building, no
//!    request may emit an event.
//! 2. **Multiset purity** — the locked baseline is a pure function of
//!    the multiset of building-phase samples: any arrival order locks
//!    bit-identical statistics.
//! 3. **Cooldown spacing** — two fired events of the same class are
//!    always more than `cooldown` requests apart, and with constant
//!    pressure the firing cadence is exactly
//!    `max(persistence, cooldown + 1)`.

use csa_core::ControlTask;
use csa_experiments::PeriodModel;
use csa_monitor::{MonitorConfig, MonitorEngine, Payload, Request, Response, Verdict};
use proptest::prelude::*;

fn generated(id: u64, seed: u64, index: usize) -> Request {
    Request {
        id,
        payload: Payload::Generated {
            profile: PeriodModel::MarginTight,
            seed,
            n: 4,
            index,
        },
    }
}

fn drive(engine: &mut MonitorEngine, stream: impl IntoIterator<Item = Request>) -> Vec<Response> {
    let mut responses = Vec::new();
    for request in stream {
        responses.extend(engine.submit(request));
    }
    responses.extend(engine.flush());
    responses
}

/// Deterministic Fisher-Yates driven by a SplitMix64 stream.
fn permute<T>(items: &mut [T], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        items.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

/// A feasible two-task set; `b0` tunes task 0's stability bound so the
/// minimum slack can be degraded without losing schedulability.
fn inline_pair(b0: f64) -> Vec<ControlTask> {
    vec![
        ControlTask::from_parts(0, 500, 1_000, 10_000, 1.2, b0).expect("valid task"),
        ControlTask::from_parts(1, 800, 2_000, 20_000, 1.5, 9e-6).expect("valid task"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariant 1: a building baseline emits nothing, whatever the
    /// stream or batching.
    #[test]
    fn no_events_while_building(
        seed in 0u64..500,
        count in 1usize..40,
        batch_window in 1usize..9,
    ) {
        let mut engine = MonitorEngine::new(MonitorConfig {
            batch_window,
            min_samples: u64::MAX, // never locks
            ..MonitorConfig::default()
        });
        let stream = (0..count).map(|k| generated(k as u64 + 1, seed, k));
        let responses = drive(&mut engine, stream);
        prop_assert_eq!(responses.len(), count);
        for response in &responses {
            prop_assert_eq!(response.lifecycle, csa_monitor::Lifecycle::Building);
            prop_assert!(response.events.is_empty());
        }
        prop_assert_eq!(engine.events_emitted(), 0);
    }

    /// Invariant 2: shuffling the arrival order of the same request
    /// multiset locks a bit-identical baseline.
    #[test]
    fn locked_baseline_is_arrival_order_invariant(
        seed in 0u64..500,
        count in 4usize..32,
        shuffle_seed in 0u64..u64::MAX,
    ) {
        // Probe pass: how many nominal samples does this stream carry?
        let mut probe = MonitorEngine::new(MonitorConfig {
            batch_window: 1,
            min_samples: u64::MAX,
            ..MonitorConfig::default()
        });
        let base: Vec<Request> = (0..count).map(|k| generated(k as u64 + 1, seed, k)).collect();
        drive(&mut probe, base.clone());
        let nominal = probe.baseline().samples();
        // Assume-style rejection: a stream with no nominal sample
        // cannot lock (the shim counts this as a filtered attempt).
        if nominal == 0 {
            continue;
        }

        // Lock exactly at the last nominal sample, in any order.
        let config = MonitorConfig {
            batch_window: 1,
            min_samples: nominal,
            ..MonitorConfig::default()
        };
        let mut in_order = MonitorEngine::new(config.clone());
        drive(&mut in_order, base.clone());

        let mut shuffled = base;
        permute(&mut shuffled, shuffle_seed);
        // Re-key ids by arrival position so processing follows the
        // shuffled order (the engine sorts each window by id).
        for (pos, request) in shuffled.iter_mut().enumerate() {
            request.id = pos as u64 + 1;
        }
        let mut out_of_order = MonitorEngine::new(config);
        drive(&mut out_of_order, shuffled);

        prop_assert_eq!(in_order.lifecycle(), csa_monitor::Lifecycle::Locked);
        prop_assert_eq!(out_of_order.lifecycle(), csa_monitor::Lifecycle::Locked);
        prop_assert_eq!(in_order.baseline(), out_of_order.baseline());
    }

    /// Invariant 3: same-class events are more than `cooldown` apart;
    /// under constant trigger pressure the cadence is exactly
    /// `max(persistence, cooldown + 1)`.
    #[test]
    fn cooldown_spaces_repeated_events(
        cooldown in 0u64..12,
        persistence in 1u64..4,
        bad_count in 10usize..40,
    ) {
        let build_count = 6u64;
        let mut engine = MonitorEngine::new(MonitorConfig {
            batch_window: 1,
            min_samples: build_count,
            persistence,
            cooldown,
            ..MonitorConfig::default()
        });

        // Identical nominal sets: mean is their shared slack, std = 0,
        // so any lower-slack set z-triggers deterministically.
        let nominal = inline_pair(4e-6); // min slack 5e-7
        let degraded = inline_pair(1.3e-6); // min slack 2e-7, still feasible
        let mut id = 0u64;
        let mut responses = Vec::new();
        for _ in 0..build_count {
            id += 1;
            responses.extend(engine.submit(Request {
                id,
                payload: Payload::Inline { tasks: nominal.clone() },
            }));
        }
        prop_assert_eq!(engine.lifecycle(), csa_monitor::Lifecycle::Locked);
        let nominal_slack = responses.last().and_then(|r| r.slack);
        for _ in 0..bad_count {
            id += 1;
            responses.extend(engine.submit(Request {
                id,
                payload: Payload::Inline { tasks: degraded.clone() },
            }));
        }
        responses.extend(engine.flush());

        // Sanity of the fixture: both sets admit, the degraded one with
        // strictly less slack.
        prop_assert!(responses.iter().all(|r| r.verdict == Verdict::Admit));
        let degraded_slack = responses.last().and_then(|r| r.slack);
        prop_assert!(degraded_slack < nominal_slack);

        // Collect per-class firing sequences.
        let mut by_class: std::collections::BTreeMap<String, Vec<u64>> =
            std::collections::BTreeMap::new();
        for response in &responses {
            for event in &response.events {
                by_class.entry(event.class.name()).or_default().push(event.seq);
            }
        }
        let cadence = persistence.max(cooldown + 1);
        let expected_fires = if bad_count as u64 >= persistence {
            1 + (bad_count as u64 - persistence) / cadence
        } else {
            0
        };
        prop_assert!(by_class.contains_key("margin-z-slack"), "no margin event fired");
        for (class, seqs) in &by_class {
            for pair in seqs.windows(2) {
                prop_assert!(
                    pair[1] - pair[0] > cooldown,
                    "class {class} fired {} then {} with cooldown {cooldown}",
                    pair[0],
                    pair[1]
                );
                prop_assert_eq!(pair[1] - pair[0], cadence);
            }
            prop_assert_eq!(seqs.len() as u64, expected_fires, "class {}", class);
        }
    }
}
