//! The benchmark plant pool.
//!
//! The paper draws its benchmark plants "from \[4\], \[14\]" — Cervin et al.'s
//! jitter-margin paper and Åström & Wittenmark's textbook — without listing
//! them. This pool covers the same families those references use: servo
//! dynamics, integrators, lags, oscillatory plants, and open-loop unstable
//! plants (see DESIGN.md §3).

use crate::error::Result;
use crate::lqg::LqgWeights;
use crate::ss::{StateSpace, TransferFunction};

/// The DC servo of the paper's Fig. 4: `G(s) = 1000 / (s^2 + s)`.
///
/// # Errors
///
/// Never fails in practice; the signature matches the other constructors.
pub fn dc_servo() -> Result<StateSpace> {
    TransferFunction::new(vec![1000.0], vec![1.0, 1.0, 0.0])?.to_state_space()
}

/// A single integrator `1/s`.
///
/// # Errors
///
/// See [`dc_servo`].
pub fn integrator() -> Result<StateSpace> {
    TransferFunction::new(vec![1.0], vec![1.0, 0.0])?.to_state_space()
}

/// A double integrator `1/s^2`.
///
/// # Errors
///
/// See [`dc_servo`].
pub fn double_integrator() -> Result<StateSpace> {
    TransferFunction::new(vec![1.0], vec![1.0, 0.0, 0.0])?.to_state_space()
}

/// A first-order lag `1/(s + 1)`.
///
/// # Errors
///
/// See [`dc_servo`].
pub fn first_order_lag() -> Result<StateSpace> {
    TransferFunction::new(vec![1.0], vec![1.0, 1.0])?.to_state_space()
}

/// A second-order lag `1/(s + 1)^2`.
///
/// # Errors
///
/// See [`dc_servo`].
pub fn second_order_lag() -> Result<StateSpace> {
    TransferFunction::new(vec![1.0], vec![1.0, 2.0, 1.0])?.to_state_space()
}

/// A damped oscillator `w0^2 / (s^2 + 2 zeta w0 s + w0^2)`.
///
/// # Errors
///
/// See [`dc_servo`].
pub fn oscillator(w0: f64, zeta: f64) -> Result<StateSpace> {
    TransferFunction::new(vec![w0 * w0], vec![1.0, 2.0 * zeta * w0, w0 * w0])?.to_state_space()
}

/// The lightly damped oscillator used for Fig. 2 (`w0 = 10`,
/// `zeta = 0.001`): its sampled realization loses reachability near
/// `h = k pi / wd`, producing the cost spikes of the paper's figure.
///
/// # Errors
///
/// See [`dc_servo`].
pub fn lightly_damped_oscillator() -> Result<StateSpace> {
    oscillator(10.0, 0.001)
}

/// An open-loop unstable first-order plant `2/(s - 1)`.
///
/// # Errors
///
/// See [`dc_servo`].
pub fn unstable_first_order() -> Result<StateSpace> {
    TransferFunction::new(vec![2.0], vec![1.0, -1.0])?.to_state_space()
}

/// An inverted-pendulum-like plant `1/(s^2 - 1)` (unstable pole at +1).
///
/// # Errors
///
/// See [`dc_servo`].
pub fn pendulum() -> Result<StateSpace> {
    TransferFunction::new(vec![1.0], vec![1.0, 0.0, -1.0])?.to_state_space()
}

/// A plant from the benchmark pool together with experiment metadata.
#[derive(Debug, Clone)]
pub struct BenchmarkPlant {
    /// Human-readable name.
    pub name: &'static str,
    /// The continuous-time model.
    pub plant: StateSpace,
    /// Sampling periods appropriate for this plant's dynamics (seconds).
    pub period_range: (f64, f64),
    /// LQG design weights.
    pub weights: LqgWeights,
}

/// The full benchmark pool used by the paper-scale experiments (§V).
///
/// # Errors
///
/// Never fails in practice (all models are fixed and valid).
///
/// # Examples
///
/// ```
/// use csa_control::plants::benchmark_pool;
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let pool = benchmark_pool()?;
/// assert!(pool.len() >= 6);
/// assert!(pool.iter().any(|p| p.name == "dc_servo"));
/// # Ok(())
/// # }
/// ```
pub fn benchmark_pool() -> Result<Vec<BenchmarkPlant>> {
    let mut pool = Vec::new();
    // Control penalties are tuned so the delay margin `b` lands between
    // roughly 0.7 and 3 sampling periods at mid-range: tight enough that
    // the stability condition genuinely constrains priority assignment
    // (the Table I experiments are vacuous otherwise), loose enough that
    // schedulable sets exist.
    type PoolEntry = (&'static str, StateSpace, (f64, f64), f64, f64);
    let entries: [PoolEntry; 7] = [
        ("dc_servo", dc_servo()?, (0.002, 0.012), 1e-1, 1e-6),
        ("integrator", integrator()?, (0.005, 0.05), 1e-3, 1e-6),
        (
            "double_integrator",
            double_integrator()?,
            (0.005, 0.04),
            1e-5,
            1e-6,
        ),
        (
            "first_order_lag",
            first_order_lag()?,
            (0.01, 0.1),
            3e-3,
            1e-4,
        ),
        (
            "second_order_lag",
            second_order_lag()?,
            (0.01, 0.1),
            1e-4,
            1e-4,
        ),
        (
            "oscillator",
            oscillator(10.0, 0.1)?,
            (0.005, 0.05),
            1e-1,
            1e-6,
        ),
        ("pendulum", pendulum()?, (0.005, 0.05), 1e-4, 1e-6),
    ];
    for (name, plant, period_range, rho, sigma) in entries {
        let weights = LqgWeights::output_regulation(&plant, rho, sigma);
        pool.push(BenchmarkPlant {
            name,
            plant,
            period_range,
            weights,
        });
    }
    Ok(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csa_linalg::{eigenvalues, is_hurwitz_stable};

    #[test]
    fn pool_members_have_expected_stability() {
        assert!(is_hurwitz_stable(first_order_lag().unwrap().a()).unwrap());
        assert!(is_hurwitz_stable(second_order_lag().unwrap().a()).unwrap());
        assert!(!is_hurwitz_stable(pendulum().unwrap().a()).unwrap());
        assert!(!is_hurwitz_stable(unstable_first_order().unwrap().a()).unwrap());
        // Servo and integrators are marginally stable (pole at origin).
        assert!(!is_hurwitz_stable(dc_servo().unwrap().a()).unwrap());
    }

    #[test]
    fn oscillator_poles() {
        let w0 = 10.0;
        let zeta = 0.1;
        let p = oscillator(w0, zeta).unwrap();
        let eigs = eigenvalues(p.a()).unwrap();
        for e in eigs {
            assert!((e.re + zeta * w0).abs() < 1e-9);
            assert!((e.im.abs() - w0 * (1.0 - zeta * zeta).sqrt()).abs() < 1e-9);
        }
    }

    #[test]
    fn pendulum_pole_at_plus_one() {
        let eigs = eigenvalues(pendulum().unwrap().a()).unwrap();
        let mut res: Vec<f64> = eigs.iter().map(|e| e.re).collect();
        res.sort_by(f64::total_cmp);
        assert!((res[0] + 1.0).abs() < 1e-9);
        assert!((res[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pole_sort_survives_nan() {
        // Regression for the former `partial_cmp(..).unwrap()` pole
        // sort (csa-lint F001, the margins.rs snap_to_series pattern):
        // a NaN real part must sort deterministically, never panic.
        let mut res = [1.0, f64::NAN, -1.0];
        res.sort_by(f64::total_cmp);
        assert_eq!(res[0], -1.0);
        assert_eq!(res[1], 1.0);
        assert!(res[2].is_nan());
    }

    #[test]
    fn pool_is_well_formed() {
        let pool = benchmark_pool().unwrap();
        for p in &pool {
            assert!(p.period_range.0 < p.period_range.1, "{}", p.name);
            assert_eq!(p.weights.q1.rows(), p.plant.order(), "{}", p.name);
            assert_eq!(p.plant.inputs(), 1, "{}", p.name);
            assert_eq!(p.plant.outputs(), 1, "{}", p.name);
        }
    }
}
