//! Jitter-margin stability curves and their linear lower bounds.
//!
//! This module replaces the closed-source Jitter Margin toolbox the paper
//! acknowledges (see DESIGN.md §3), using a discrete-time small-gain
//! criterion in the style of Kao & Lincoln (Automatica 2004).
//!
//! Setup: continuous plant, fixed sampled LQG controller at period `h`,
//! constant latency `L = d*h + tau'`, and an uncertain extra delay
//! `delta_k in [0, J]` on each control update. Shifting the actuation
//! switch instant from `tau'` to `tau' + delta_k` perturbs the sampled
//! state update by
//!
//! ```text
//! F(delta_k) (v_{k-1} - v_k),   F(delta) = int_{tau'}^{tau'+delta} e^{A(h-s)} ds B
//! ```
//!
//! where `v_k = u_{k-d}` is the control value being switched in. To first
//! order `F(delta) = delta * g` with the fixed direction
//! `g = e^{A(h-tau')} B`, so the uncertainty is a memoryless gain
//! `delta_k in [0, J]` wrapped around the LTI loop from a state injection
//! `g` to the update difference `(1 - z^{-1}) v`. The small-gain theorem
//! then guarantees stability for every time-varying delay when
//!
//! ```text
//! J * |1 - e^{-j w h}| * |G_{u <- g}(e^{j w h})| < 1,  w in (0, pi/h]
//! ```
//!
//! (the `z^{-d}` between `u` and `v` has unit modulus), giving
//!
//! ```text
//! J_max(L) = 1 / sup_w |1 - e^{-j w h}| |G_{u <- g}(e^{j w h})|
//! ```
//!
//! with `J_max(L) = 0` if the latency-`L` loop is not even nominally
//! stable. Sweeping `L` yields the paper's Fig. 4 stability curves, and
//! [`StabilityFit`] produces the linear lower bound `L + a J <= b` of
//! Eq. 5.

//! # Kernel classes (DESIGN.md §10)
//!
//! Since PR 6 the margin computations run on a re-entrant
//! [`MarginScratch`] workspace in one of two [`KernelMode`]s:
//!
//! * [`KernelMode::Exact`] replays the original dense pipeline
//!   bit-for-bit (pinned against [`crate::reference`] by differential
//!   tests) — this is what the persisted margin tables are built with;
//! * [`KernelMode::Fast`] reuses the pre-check eigenvalues as the poles
//!   of a partial-fraction model fitted from a handful of
//!   Hessenberg-solved samples, then sweeps frequencies in `O(n)` per
//!   point (verified per loop, with an `O(n^2)`-per-point Hessenberg
//!   fallback) — this backs the public
//!   [`jitter_margin`]/[`stability_curve`] entry points and the Fig. 4
//!   plots, and agrees with `Exact` to round-off.
//!
//! [`StabilityCurveBatch`] bundles a scratch with a warm-started LQG
//! designer to walk whole period grids per plant.

use crate::c2d::{c2d_zoh_delayed, delay_split};
use crate::error::{Error, Result};
use crate::freq::{HessSiso, ResponseScratch};
use crate::lqg::{input_sensitivity_loop, LqgDesigner, LqgWeights};
use crate::ss::{DiscreteSs, StateSpace};
use csa_linalg::{expm, Cplx, EigScratch, Mat};

/// Number of frequency grid points for the small-gain sweep.
const FREQ_POINTS: usize = 600;
/// Held-out sweep-grid indices where the fast kernel's partial-fraction
/// fit must reproduce the Hessenberg solve to round-off before it is
/// trusted for the full sweep (they never coincide with the fit's sample
/// indices, which sit at strip midpoints).
const PF_CHECK_POINTS: [usize; 5] = [0, 97, 331, 523, FREQ_POINTS - 1];
/// Round-off budget of the partial-fraction verification, relative to
/// the largest observed response magnitude. A healthy fit lands around
/// 1e-12 relative; repeated or defective poles blow well past this and
/// fall back to the full Hessenberg sweep.
const PF_TOL: f64 = 1e-10;
/// Jitter margins are reported at most this many sampling periods — the
/// criterion is meaningless for jitter far beyond a period (the scheduler
/// cannot produce it under implicit deadlines anyway).
const JITTER_CAP_PERIODS: f64 = 20.0;

/// One point of a stability curve: at constant latency `latency`, any
/// response-time jitter up to `jitter_margin` preserves stability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Constant part of the delay (seconds).
    pub latency: f64,
    /// Maximum tolerable jitter at this latency (seconds).
    pub jitter_margin: f64,
}

/// A jitter-margin stability curve for one plant/controller/period triple.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityCurve {
    points: Vec<CurvePoint>,
    delay_margin: f64,
    period: f64,
}

impl StabilityCurve {
    /// The sampled curve points, ordered by increasing latency.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// The delay margin: the supremum of constant latencies that keep the
    /// loop nominally stable (the curve's intercept with `J = 0`).
    pub fn delay_margin(&self) -> f64 {
        self.delay_margin
    }

    /// Sampling period the curve was computed for.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Assembles a curve from already-computed parts (reference module and
    /// artifact deserialization).
    pub(crate) fn from_parts(points: Vec<CurvePoint>, delay_margin: f64, period: f64) -> Self {
        StabilityCurve {
            points,
            delay_margin,
            period,
        }
    }
}

/// Selects which kernel class a [`MarginScratch`] evaluation runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Bit-identical replay of the retained reference pipeline
    /// ([`crate::reference`]): dense `O(n^3)` frequency solves and cold
    /// DARE synthesis. Used wherever downstream artifacts are bit-frozen
    /// (the persisted margin tables and the witness corpus).
    Exact,
    /// Pole/residue (partial-fraction) frequency sweeps in `O(n)` per
    /// point — verified per loop against the Hessenberg solve and falling
    /// back to the `O(n^2)`-per-point Hessenberg sweep whenever the fit
    /// cannot be certified — plus warm-started DARE synthesis. Agrees
    /// with [`KernelMode::Exact`] to round-off (relative error ~1e-10 on
    /// the margins themselves); the nominal-stability pre-check is shared
    /// with the exact path, so a latency beyond the delay margin yields
    /// exactly `0.0` in both modes.
    Fast,
}

/// Re-entrant workspace for jitter-margin evaluations (PR 6 scratch-space
/// family).
///
/// Holds the eigensolver, dense-response, and Hessenberg-sweep buffers so
/// that sweeping a whole stability curve — or a whole period grid via
/// [`StabilityCurveBatch`] — performs no per-frequency allocations.
#[derive(Debug)]
pub struct MarginScratch {
    eig: EigScratch,
    resp: ResponseScratch,
    hess: HessSiso,
    // Cached frequency-sweep tables (grid frequencies, unit-circle points
    // and discrete-derivative weights), keyed on the (h, loop period) bit
    // patterns. Pure functions of the key computed with the pinned
    // per-point formulas, so reuse is bit-transparent to both kernels.
    sweep_key: Option<(u64, u64)>,
    sweep_z: Vec<Cplx>,
    sweep_deriv: Vec<f64>,
    // Pole/residue model of the fast kernel's partial-fraction sweep.
    poles: Vec<Cplx>,
    residues: Vec<Cplx>,
    pf_mat: Vec<Cplx>,
    pf_rhs: Vec<Cplx>,
}

impl MarginScratch {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        MarginScratch {
            eig: EigScratch::new(),
            resp: ResponseScratch::new(),
            hess: HessSiso::new(),
            sweep_key: None,
            sweep_z: Vec::new(),
            sweep_deriv: Vec::new(),
            poles: Vec::new(),
            residues: Vec::new(),
            pf_mat: Vec::new(),
            pf_rhs: Vec::new(),
        }
    }

    /// (Re)builds the cached sweep tables for sampling period `h` and loop
    /// period `period`. Each entry is computed with exactly the per-point
    /// formulas of the original sweep loop, so a cached value is
    /// bit-identical to the value the loop would have recomputed — the
    /// cache is transparent to [`KernelMode::Exact`].
    fn sweep_tables(&mut self, h: f64, period: f64) {
        let key = (h.to_bits(), period.to_bits());
        if self.sweep_key == Some(key) {
            return;
        }
        self.sweep_z.clear();
        self.sweep_deriv.clear();
        let w_max = std::f64::consts::PI / h;
        let w_min = w_max / 1e4;
        let log_step = (w_max / w_min).ln() / (FREQ_POINTS - 1) as f64;
        for i in 0..FREQ_POINTS {
            let w = w_min * (log_step * i as f64).exp();
            self.sweep_z.push(Cplx::from_angle(w * period));
            // |1 - e^{-j w h}| — the discrete-derivative weight on v.
            self.sweep_deriv
                .push((Cplx::ONE - Cplx::from_angle(-w * h)).abs());
        }
        self.sweep_key = Some(key);
    }

    /// Fits the strictly proper part of the loop response as a
    /// pole/residue sum `G(z) - d0 = sum_i r_i / (z - p_i)` over the
    /// already-computed loop eigenvalues (`self.poles`), by sampling `G`
    /// through the Hessenberg solver at `n` spread-out grid points and
    /// solving the resulting Cauchy system for the residues.
    ///
    /// A strictly proper rational function of McMillan degree at most `n`
    /// with known poles is determined by its values at `n` distinct
    /// points, so in exact arithmetic the fit *is* `G`; what can go wrong
    /// is round-off (eigenvalue error amplified near lightly damped
    /// poles, ill-conditioned Cauchy solves, repeated/defective poles).
    /// The fit is therefore verified against the Hessenberg solve at
    /// held-out grid indices — including the grid point nearest each pole
    /// angle, where eigenvalue perturbations bite hardest — and `false`
    /// (caller falls back to the full Hessenberg sweep) is returned
    /// unless every check lands within [`PF_TOL`] of round-off.
    fn fit_partial_fractions(&mut self, d0: f64, h: f64, period: f64) -> Result<bool> {
        let n = self.poles.len();
        if n == 0 || 2 * n >= FREQ_POINTS {
            return Ok(false);
        }
        self.pf_mat.clear();
        self.pf_rhs.clear();
        let mut g_scale = 1.0f64;
        // Sample at the midpoints of n equal strips of the sweep grid —
        // never an endpoint, so the held-out checks stay distinct.
        for k in 0..n {
            let idx = (2 * k + 1) * FREQ_POINTS / (2 * n);
            let z = self.sweep_z[idx];
            let gz = self.hess.eval(z)?;
            g_scale = g_scale.max(gz.abs());
            self.pf_rhs.push(gz - Cplx::from_re(d0));
            for i in 0..n {
                let diff = z - self.poles[i];
                if diff == Cplx::ZERO {
                    return Ok(false);
                }
                self.pf_mat.push(Cplx::ONE / diff);
            }
        }
        if !solve_small(&mut self.pf_mat, &mut self.pf_rhs, n) {
            return Ok(false);
        }
        std::mem::swap(&mut self.residues, &mut self.pf_rhs);
        // Verify at the fixed held-out indices plus the grid point nearest
        // each pole's angle (where the response peaks and pole error is
        // amplified the most).
        let w_max = std::f64::consts::PI / h;
        let w_min = w_max / 1e4;
        let log_step = (w_max / w_min).ln() / (FREQ_POINTS - 1) as f64;
        let mut check_indices: Vec<usize> = PF_CHECK_POINTS.to_vec();
        for p in &self.poles {
            let theta = p.arg();
            if theta <= 0.0 || !theta.is_finite() {
                continue;
            }
            let w = theta / period;
            if w < w_min || w > w_max {
                continue;
            }
            let idx = ((w / w_min).ln() / log_step).round() as usize;
            check_indices.push(idx.min(FREQ_POINTS - 1));
        }
        let mut err_max = 0.0f64;
        for idx in check_indices {
            let z = self.sweep_z[idx];
            let reference = self.hess.eval(z)?;
            let fitted = pf_eval(&self.poles, &self.residues, d0, z);
            let err = (fitted - reference).abs();
            if !err.is_finite() {
                return Ok(false);
            }
            err_max = err_max.max(err);
            g_scale = g_scale.max(reference.abs());
        }
        Ok(err_max <= PF_TOL * g_scale)
    }

    /// Computes the jitter margin `J_max` at one latency; semantics of
    /// [`jitter_margin`], kernel class chosen by `mode`.
    ///
    /// # Errors
    ///
    /// Same as [`jitter_margin`].
    pub fn jitter_margin(
        &mut self,
        mode: KernelMode,
        plant: &StateSpace,
        controller: &DiscreteSs,
        h: f64,
        latency: f64,
    ) -> Result<f64> {
        if !(latency.is_finite() && latency >= 0.0) {
            return Err(Error::InvalidParameter("latency must be non-negative"));
        }
        let plant_l = c2d_zoh_delayed(plant, h, latency)?;
        // Injection direction g = e^{A(h - tau')} B of the first-order delay
        // perturbation, padded across the delay registers.
        let (_, tau_frac) = delay_split(h, latency);
        let g = &expm(&plant.a().scale(h - tau_frac))? * plant.b();
        let loop_sys = injection_loop(&plant_l, controller, &g)?;
        // Nominal-stability pre-check, shared bit-identically by both
        // modes: the fold mirrors `EigScratch::spectral_radius_in`
        // exactly; keeping the eigenvalues around lets the fast path
        // reuse them as the poles of its partial-fraction sweep.
        let rho = {
            let eigs = self.eig.eigenvalues_in(loop_sys.a())?;
            if mode == KernelMode::Fast {
                self.poles.clear();
                self.poles.extend_from_slice(eigs);
            }
            eigs.iter().fold(0.0f64, |m, l| m.max(l.abs()))
        };
        if rho >= 1.0 {
            return Ok(0.0);
        }
        self.sweep_tables(h, loop_sys.period());
        let cap = JITTER_CAP_PERIODS * h;
        let mut j_max = cap;
        match mode {
            KernelMode::Exact => {
                for i in 0..FREQ_POINTS {
                    let z = self.sweep_z[i];
                    let m00 = self.resp.response_at_in(
                        loop_sys.a(),
                        loop_sys.b(),
                        loop_sys.c(),
                        loop_sys.d(),
                        z,
                    )?[(0, 0)];
                    let gain = self.sweep_deriv[i] * m00.abs();
                    if gain > 0.0 {
                        j_max = j_max.min(1.0 / gain);
                    }
                }
            }
            KernelMode::Fast => {
                self.hess.build(&loop_sys)?;
                let d0 = loop_sys.d()[(0, 0)];
                if self.fit_partial_fractions(d0, h, loop_sys.period())? {
                    // O(n) per point over the verified pole/residue model.
                    for i in 0..FREQ_POINTS {
                        let g = pf_eval(&self.poles, &self.residues, d0, self.sweep_z[i]);
                        let gain = self.sweep_deriv[i] * g.abs_sq().sqrt();
                        if gain > 0.0 {
                            j_max = j_max.min(1.0 / gain);
                        }
                    }
                } else {
                    // Unverifiable fit — full O(n^2)-per-point Hessenberg
                    // sweep, the fast kernel's former default.
                    for i in 0..FREQ_POINTS {
                        let m00 = self.hess.eval(self.sweep_z[i])?;
                        let gain = self.sweep_deriv[i] * m00.abs();
                        if gain > 0.0 {
                            j_max = j_max.min(1.0 / gain);
                        }
                    }
                }
            }
        }
        Ok(j_max)
    }

    /// Computes the delay margin; semantics of [`delay_margin`]. The
    /// bisection only needs spectral radii, so both kernel modes share
    /// this (bit-identical) path.
    ///
    /// # Errors
    ///
    /// Same as [`delay_margin`].
    pub fn delay_margin(
        &mut self,
        plant: &StateSpace,
        controller: &DiscreteSs,
        h: f64,
    ) -> Result<f64> {
        let cap = JITTER_CAP_PERIODS * h;
        let eig = &mut self.eig;
        let mut stable_at = |l: f64| -> Result<bool> {
            let plant_l = c2d_zoh_delayed(plant, h, l)?;
            let loop_sys = input_sensitivity_loop(&plant_l, controller)?;
            Ok(eig.spectral_radius_in(loop_sys.a())? < 1.0)
        };
        if !stable_at(0.0)? {
            return Ok(0.0);
        }
        // Coarse scan to bracket the boundary.
        let step = h / 4.0;
        let mut lo = 0.0;
        let mut hi = cap;
        let mut found_unstable = false;
        let mut l = step;
        while l <= cap {
            if !stable_at(l)? {
                hi = l;
                found_unstable = true;
                break;
            }
            lo = l;
            l += step;
        }
        if !found_unstable {
            return Ok(cap);
        }
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if stable_at(mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-9 * h.max(1e-9) {
                break;
            }
        }
        Ok(lo)
    }

    /// Sweeps the full stability curve; semantics of [`stability_curve`],
    /// kernel class chosen by `mode`.
    ///
    /// # Errors
    ///
    /// Same as [`stability_curve`].
    pub fn stability_curve(
        &mut self,
        mode: KernelMode,
        plant: &StateSpace,
        controller: &DiscreteSs,
        h: f64,
        points: usize,
    ) -> Result<StabilityCurve> {
        if points < 2 {
            return Err(Error::InvalidParameter("curve needs at least two points"));
        }
        let dm = self.delay_margin(plant, controller, h)?;
        let mut curve = Vec::with_capacity(points);
        for i in 0..points {
            let l = dm * i as f64 / (points - 1) as f64;
            let j = self.jitter_margin(mode, plant, controller, h, l)?;
            curve.push(CurvePoint {
                latency: l,
                jitter_margin: j,
            });
        }
        Ok(StabilityCurve {
            points: curve,
            delay_margin: dm,
            period: h,
        })
    }
}

impl Default for MarginScratch {
    fn default() -> Self {
        MarginScratch::new()
    }
}

/// Evaluates the pole/residue model `d0 + sum_i r_i / (z - p_i)`,
/// expanding each division as `r * conj(z - p) / |z - p|^2` — one real
/// division per pole, no branches.
#[inline]
fn pf_eval(poles: &[Cplx], residues: &[Cplx], d0: f64, z: Cplx) -> Cplx {
    let mut g = Cplx::from_re(d0);
    for (p, r) in poles.iter().zip(residues) {
        let dre = z.re - p.re;
        let dim = z.im - p.im;
        let inv = 1.0 / (dre * dre + dim * dim);
        g.re += (r.re * dre + r.im * dim) * inv;
        g.im += (r.im * dre - r.re * dim) * inv;
    }
    g
}

/// In-place Gaussian elimination with partial pivoting on a small dense
/// complex system (`m` is `n x n` row-major, `rhs` holds the right-hand
/// side and receives the solution). Returns `false` on breakdown —
/// non-finite or zero pivots — instead of erroring, because the only
/// caller treats an unsolvable system as "fall back to the safe path".
fn solve_small(m: &mut [Cplx], rhs: &mut [Cplx], n: usize) -> bool {
    for k in 0..n {
        let mut piv = k;
        let mut best = m[k * n + k].abs();
        for i in (k + 1)..n {
            let v = m[i * n + k].abs();
            if v > best {
                best = v;
                piv = i;
            }
        }
        if best <= 0.0 || !best.is_finite() {
            return false;
        }
        if piv != k {
            for j in 0..n {
                m.swap(k * n + j, piv * n + j);
            }
            rhs.swap(k, piv);
        }
        let pivot = m[k * n + k];
        for i in (k + 1)..n {
            let f = m[i * n + k] / pivot;
            if f != Cplx::ZERO {
                for j in (k + 1)..n {
                    let v = f * m[k * n + j];
                    m[i * n + j] -= v;
                }
                let v = f * rhs[k];
                rhs[i] -= v;
            }
        }
    }
    for k in (0..n).rev() {
        let mut acc = rhs[k];
        for j in (k + 1)..n {
            acc -= m[k * n + j] * rhs[j];
        }
        rhs[k] = acc / m[k * n + k];
        if !rhs[k].is_finite() {
            return false;
        }
    }
    true
}

/// Computes the jitter margin `J_max` for a fixed latency.
///
/// Returns `0.0` when the latency-`L` loop is nominally unstable, and a
/// value capped at `20 h` when the small-gain constraint set is empty.
///
/// # Errors
///
/// Propagates structural/numerical failures (dimension mismatches and the
/// like); "no margin" is the value `0.0`, not an error.
///
/// # Examples
///
/// ```
/// use csa_control::{design_lqg, jitter_margin, plants, LqgWeights};
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let plant = plants::dc_servo()?;
/// let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
/// let lqg = design_lqg(&plant, &w, 0.006, 0.0)?;
/// let j0 = jitter_margin(&plant, &lqg.controller, 0.006, 0.0)?;
/// assert!(j0 > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn jitter_margin(
    plant: &StateSpace,
    controller: &DiscreteSs,
    h: f64,
    latency: f64,
) -> Result<f64> {
    MarginScratch::new().jitter_margin(KernelMode::Fast, plant, controller, h, latency)
}

/// [`jitter_margin`] on the bit-frozen exact kernel ([`KernelMode::Exact`]).
///
/// Identical, bit-for-bit, to the retained reference implementation
/// ([`crate::reference::jitter_margin`]); use this wherever downstream
/// artifacts pin the produced floats exactly.
///
/// # Errors
///
/// Same as [`jitter_margin`].
pub fn jitter_margin_exact(
    plant: &StateSpace,
    controller: &DiscreteSs,
    h: f64,
    latency: f64,
) -> Result<f64> {
    MarginScratch::new().jitter_margin(KernelMode::Exact, plant, controller, h, latency)
}

/// Assembles the closed loop with an exogenous input entering the plant
/// *state* through column `g` (zero-padded across the delay registers) and
/// the controller output `u` as output.
pub(crate) fn injection_loop(
    plant_d: &DiscreteSs,
    ctrl: &DiscreteSs,
    g: &Mat,
) -> Result<DiscreteSs> {
    // Reuse the validated plant-input loop for the A matrix, then swap the
    // input matrix for the state injection.
    let base = input_sensitivity_loop(plant_d, ctrl)?;
    let np = plant_d.order();
    let nc = ctrl.order();
    let mut b = Mat::zeros(np + nc, g.cols());
    b.set_block(0, 0, g);
    DiscreteSs::new(
        base.a().clone(),
        b,
        base.c().clone(),
        Mat::zeros(base.outputs(), g.cols()),
        plant_d.period(),
    )
}

/// Computes the delay margin: the largest constant latency keeping the
/// loop nominally stable, found by coarse scan plus bisection, capped at
/// `20 h`.
///
/// # Errors
///
/// Propagates numerical failures.
pub fn delay_margin(plant: &StateSpace, controller: &DiscreteSs, h: f64) -> Result<f64> {
    MarginScratch::new().delay_margin(plant, controller, h)
}

/// Sweeps the jitter margin over a latency grid, producing a full
/// stability curve (the paper's Fig. 4).
///
/// The grid spans `[0, delay_margin]` with `points` samples.
///
/// # Errors
///
/// Propagates numerical failures; `points < 2` is rejected.
pub fn stability_curve(
    plant: &StateSpace,
    controller: &DiscreteSs,
    h: f64,
    points: usize,
) -> Result<StabilityCurve> {
    MarginScratch::new().stability_curve(KernelMode::Fast, plant, controller, h, points)
}

/// [`stability_curve`] on the bit-frozen exact kernel
/// ([`KernelMode::Exact`]); bit-identical to
/// [`crate::reference::stability_curve`].
///
/// # Errors
///
/// Same as [`stability_curve`].
pub fn stability_curve_exact(
    plant: &StateSpace,
    controller: &DiscreteSs,
    h: f64,
    points: usize,
) -> Result<StabilityCurve> {
    MarginScratch::new().stability_curve(KernelMode::Exact, plant, controller, h, points)
}

/// Batched stability-curve evaluator: one LQG designer plus one
/// [`MarginScratch`], reused across a whole period grid per plant.
///
/// In [`KernelMode::Fast`] the designer warm-starts each period's DAREs
/// from the previous period's solutions (Kleinman policy iteration,
/// falling back to the cold solver whenever the seed does not apply), so
/// walking a log-period grid `h, h+δh, ...` amortizes both the Riccati
/// solves and all workspace allocations. In [`KernelMode::Exact`] the
/// designer stays cold and every produced float is bit-identical to the
/// one-shot [`design_lqg`](crate::design_lqg) + [`stability_curve_exact`]
/// pipeline — this is the kernel the persisted margin tables are built
/// with.
#[derive(Debug)]
pub struct StabilityCurveBatch {
    designer: LqgDesigner,
    scratch: MarginScratch,
    mode: KernelMode,
}

impl StabilityCurveBatch {
    /// Creates a batch evaluator in the given kernel mode.
    pub fn new(mode: KernelMode) -> Self {
        let designer = match mode {
            KernelMode::Exact => LqgDesigner::cold(),
            KernelMode::Fast => LqgDesigner::warm_started(),
        };
        StabilityCurveBatch {
            designer,
            scratch: MarginScratch::new(),
            mode,
        }
    }

    /// The kernel mode this evaluator runs on.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Drops any warm-start state. Call when switching to an unrelated
    /// plant so a stale same-shaped seed is never consulted (a wrong seed
    /// is still *correct* — the warm solver verifies and falls back — but
    /// it wastes iterations).
    pub fn reset(&mut self) {
        self.designer.reset();
    }

    /// Designs the LQG controller for `(plant, weights, h, tau)` and
    /// sweeps its stability curve plus Eq. 5 fit.
    ///
    /// # Errors
    ///
    /// Propagates design failures ([`Error::NotStabilizable`] at
    /// pathological periods) and curve failures.
    pub fn curve_at(
        &mut self,
        plant: &StateSpace,
        weights: &LqgWeights,
        h: f64,
        tau: f64,
        points: usize,
    ) -> Result<(StabilityCurve, StabilityFit)> {
        let lqg = self.designer.design(plant, weights, h, tau)?;
        let curve = self
            .scratch
            .stability_curve(self.mode, plant, &lqg.controller, h, points)?;
        let fit = StabilityFit::from_curve(&curve);
        Ok((curve, fit))
    }

    /// [`StabilityCurveBatch::curve_at`] with the margin-table cell
    /// semantics: `None` when the plant cannot be designed at `h`, when
    /// the curve fails, or when the delay margin is zero (an unusable
    /// cell), `Some` otherwise.
    pub fn margin_cell(
        &mut self,
        plant: &StateSpace,
        weights: &LqgWeights,
        h: f64,
        tau: f64,
        points: usize,
    ) -> Option<(StabilityCurve, StabilityFit)> {
        match self.curve_at(plant, weights, h, tau, points) {
            Ok((curve, fit)) if curve.delay_margin() > 0.0 => Some((curve, fit)),
            _ => None,
        }
    }

    /// Walks an increasing period grid, producing one optional cell per
    /// period (see [`StabilityCurveBatch::margin_cell`]). Warm-start state
    /// is reset at the start of the walk, then flows from each period to
    /// the next.
    pub fn curve_grid(
        &mut self,
        plant: &StateSpace,
        weights: &LqgWeights,
        periods: &[f64],
        tau: f64,
        points: usize,
    ) -> Vec<Option<(StabilityCurve, StabilityFit)>> {
        self.reset();
        periods
            .iter()
            .map(|&h| self.margin_cell(plant, weights, h, tau, points))
            .collect()
    }
}

/// The linear lower bound `L + a J <= b` of the paper's Eq. 5, fitted
/// under a [`StabilityCurve`].
///
/// `a >= 1` and `b >= 0` always hold, matching the paper's constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityFit {
    /// Jitter weight `a >= 1`.
    pub a: f64,
    /// Delay budget `b >= 0` (seconds).
    pub b: f64,
}

impl StabilityFit {
    /// Fits the bound to a curve: `b` is the delay margin and `a` the
    /// smallest slope weight (at least 1) keeping the line `J = (b - L)/a`
    /// below every sampled curve point.
    pub fn from_curve(curve: &StabilityCurve) -> StabilityFit {
        let b = curve.delay_margin();
        let mut a = 1.0f64;
        for p in curve.points() {
            if p.jitter_margin > 1e-12 && p.latency < b {
                a = a.max((b - p.latency) / p.jitter_margin);
            }
        }
        StabilityFit { a, b }
    }

    /// The stability test of Eq. 5: `L + a J <= b`.
    ///
    /// # Examples
    ///
    /// ```
    /// use csa_control::StabilityFit;
    ///
    /// let fit = StabilityFit { a: 1.5, b: 0.010 };
    /// assert!(fit.is_stable(0.004, 0.004));
    /// assert!(!fit.is_stable(0.004, 0.005));
    /// ```
    pub fn is_stable(&self, latency: f64, jitter: f64) -> bool {
        latency + self.a * jitter <= self.b
    }

    /// Maximum jitter the linear bound permits at a given latency
    /// (clamped at zero).
    pub fn max_jitter(&self, latency: f64) -> f64 {
        ((self.b - latency) / self.a).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lqg::{design_lqg, LqgWeights};
    use crate::plants;

    fn servo_lqg(h: f64) -> (StateSpace, DiscreteSs) {
        let plant = plants::dc_servo().unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
        let lqg = design_lqg(&plant, &w, h, 0.0).unwrap();
        (plant, lqg.controller)
    }

    #[test]
    fn margin_positive_at_zero_latency() {
        let (plant, ctrl) = servo_lqg(0.006);
        let j = jitter_margin(&plant, &ctrl, 0.006, 0.0).unwrap();
        assert!(j > 0.0, "J_max(0) = {j}");
        assert!(j < 0.12, "J_max(0) = {j} looks unphysically large");
    }

    #[test]
    fn margin_zero_beyond_delay_margin() {
        let (plant, ctrl) = servo_lqg(0.006);
        let dm = delay_margin(&plant, &ctrl, 0.006).unwrap();
        assert!(dm > 0.0);
        let j = jitter_margin(&plant, &ctrl, 0.006, dm * 1.05).unwrap();
        assert_eq!(j, 0.0);
    }

    #[test]
    fn curve_is_broadly_decreasing() {
        let (plant, ctrl) = servo_lqg(0.006);
        let curve = stability_curve(&plant, &ctrl, 0.006, 25).unwrap();
        let pts = curve.points();
        assert_eq!(pts.len(), 25);
        // Endpoints: decreasing overall.
        assert!(pts[0].jitter_margin > pts[pts.len() - 2].jitter_margin);
        // Last point is at the delay margin; margin there is ~0.
        assert!(pts[pts.len() - 1].jitter_margin < 0.35 * pts[0].jitter_margin);
        // Latencies are increasing.
        for w in pts.windows(2) {
            assert!(w[1].latency > w[0].latency);
        }
    }

    #[test]
    fn fit_is_below_curve_with_valid_coefficients() {
        let (plant, ctrl) = servo_lqg(0.006);
        let curve = stability_curve(&plant, &ctrl, 0.006, 30).unwrap();
        let fit = StabilityFit::from_curve(&curve);
        assert!(fit.a >= 1.0, "a = {}", fit.a);
        assert!(fit.b > 0.0, "b = {}", fit.b);
        for p in curve.points() {
            let line = fit.max_jitter(p.latency);
            assert!(
                line <= p.jitter_margin + 1e-12,
                "line {line} above curve {} at L={}",
                p.jitter_margin,
                p.latency
            );
        }
    }

    #[test]
    fn small_gain_margin_within_delay_margin() {
        // Consistency: exhausting the jitter margin as *constant* delay
        // must not exceed the delay margin (constant delay is one
        // admissible realization of the time-varying uncertainty). The
        // criterion linearizes the delay perturbation, so allow a few
        // percent of slack.
        let (plant, ctrl) = servo_lqg(0.006);
        let dm = delay_margin(&plant, &ctrl, 0.006).unwrap();
        let j0 = jitter_margin(&plant, &ctrl, 0.006, 0.0).unwrap();
        assert!(
            j0 <= 1.05 * dm + 1e-9,
            "small-gain jitter margin {j0} exceeds delay margin {dm}"
        );
    }

    #[test]
    fn unstable_plant_has_margins_too() {
        let plant = plants::pendulum().unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-3, 1e-6);
        let h = 0.02;
        let lqg = design_lqg(&plant, &w, h, 0.0).unwrap();
        let j = jitter_margin(&plant, &lqg.controller, h, 0.0).unwrap();
        assert!(j > 0.0);
        let dm = delay_margin(&plant, &lqg.controller, h).unwrap();
        assert!(dm > 0.0 && dm < 20.0 * h);
    }

    #[test]
    fn negative_latency_rejected() {
        let (plant, ctrl) = servo_lqg(0.006);
        assert!(jitter_margin(&plant, &ctrl, 0.006, -0.001).is_err());
    }

    #[test]
    fn curve_needs_two_points() {
        let (plant, ctrl) = servo_lqg(0.006);
        assert!(stability_curve(&plant, &ctrl, 0.006, 1).is_err());
    }
}
