//! Jitter-margin stability curves and their linear lower bounds.
//!
//! This module replaces the closed-source Jitter Margin toolbox the paper
//! acknowledges (see DESIGN.md §3), using a discrete-time small-gain
//! criterion in the style of Kao & Lincoln (Automatica 2004).
//!
//! Setup: continuous plant, fixed sampled LQG controller at period `h`,
//! constant latency `L = d*h + tau'`, and an uncertain extra delay
//! `delta_k in [0, J]` on each control update. Shifting the actuation
//! switch instant from `tau'` to `tau' + delta_k` perturbs the sampled
//! state update by
//!
//! ```text
//! F(delta_k) (v_{k-1} - v_k),   F(delta) = int_{tau'}^{tau'+delta} e^{A(h-s)} ds B
//! ```
//!
//! where `v_k = u_{k-d}` is the control value being switched in. To first
//! order `F(delta) = delta * g` with the fixed direction
//! `g = e^{A(h-tau')} B`, so the uncertainty is a memoryless gain
//! `delta_k in [0, J]` wrapped around the LTI loop from a state injection
//! `g` to the update difference `(1 - z^{-1}) v`. The small-gain theorem
//! then guarantees stability for every time-varying delay when
//!
//! ```text
//! J * |1 - e^{-j w h}| * |G_{u <- g}(e^{j w h})| < 1,  w in (0, pi/h]
//! ```
//!
//! (the `z^{-d}` between `u` and `v` has unit modulus), giving
//!
//! ```text
//! J_max(L) = 1 / sup_w |1 - e^{-j w h}| |G_{u <- g}(e^{j w h})|
//! ```
//!
//! with `J_max(L) = 0` if the latency-`L` loop is not even nominally
//! stable. Sweeping `L` yields the paper's Fig. 4 stability curves, and
//! [`StabilityFit`] produces the linear lower bound `L + a J <= b` of
//! Eq. 5.

use crate::c2d::{c2d_zoh_delayed, delay_split};
use crate::error::{Error, Result};
use crate::freq::discrete_response;
use crate::lqg::input_sensitivity_loop;
use crate::ss::{DiscreteSs, StateSpace};
use csa_linalg::{expm, spectral_radius, Cplx, Mat};

/// Number of frequency grid points for the small-gain sweep.
const FREQ_POINTS: usize = 600;
/// Jitter margins are reported at most this many sampling periods — the
/// criterion is meaningless for jitter far beyond a period (the scheduler
/// cannot produce it under implicit deadlines anyway).
const JITTER_CAP_PERIODS: f64 = 20.0;

/// One point of a stability curve: at constant latency `latency`, any
/// response-time jitter up to `jitter_margin` preserves stability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Constant part of the delay (seconds).
    pub latency: f64,
    /// Maximum tolerable jitter at this latency (seconds).
    pub jitter_margin: f64,
}

/// A jitter-margin stability curve for one plant/controller/period triple.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityCurve {
    points: Vec<CurvePoint>,
    delay_margin: f64,
    period: f64,
}

impl StabilityCurve {
    /// The sampled curve points, ordered by increasing latency.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// The delay margin: the supremum of constant latencies that keep the
    /// loop nominally stable (the curve's intercept with `J = 0`).
    pub fn delay_margin(&self) -> f64 {
        self.delay_margin
    }

    /// Sampling period the curve was computed for.
    pub fn period(&self) -> f64 {
        self.period
    }
}

/// Computes the jitter margin `J_max` for a fixed latency.
///
/// Returns `0.0` when the latency-`L` loop is nominally unstable, and a
/// value capped at `20 h` when the small-gain constraint set is empty.
///
/// # Errors
///
/// Propagates structural/numerical failures (dimension mismatches and the
/// like); "no margin" is the value `0.0`, not an error.
///
/// # Examples
///
/// ```
/// use csa_control::{design_lqg, jitter_margin, plants, LqgWeights};
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let plant = plants::dc_servo()?;
/// let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
/// let lqg = design_lqg(&plant, &w, 0.006, 0.0)?;
/// let j0 = jitter_margin(&plant, &lqg.controller, 0.006, 0.0)?;
/// assert!(j0 > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn jitter_margin(
    plant: &StateSpace,
    controller: &DiscreteSs,
    h: f64,
    latency: f64,
) -> Result<f64> {
    if !(latency.is_finite() && latency >= 0.0) {
        return Err(Error::InvalidParameter("latency must be non-negative"));
    }
    let plant_l = c2d_zoh_delayed(plant, h, latency)?;
    // Injection direction g = e^{A(h - tau')} B of the first-order delay
    // perturbation, padded across the delay registers.
    let (_, tau_frac) = delay_split(h, latency);
    let g = &expm(&plant.a().scale(h - tau_frac))? * plant.b();
    let loop_sys = injection_loop(&plant_l, controller, &g)?;
    if spectral_radius(loop_sys.a())? >= 1.0 {
        return Ok(0.0);
    }
    let cap = JITTER_CAP_PERIODS * h;
    let mut j_max = cap;
    let w_max = std::f64::consts::PI / h;
    let w_min = w_max / 1e4;
    let log_step = (w_max / w_min).ln() / (FREQ_POINTS - 1) as f64;
    for i in 0..FREQ_POINTS {
        let w = w_min * (log_step * i as f64).exp();
        let m = discrete_response(&loop_sys, w)?;
        // |1 - e^{-j w h}| — the discrete-derivative weight on v.
        let deriv = (Cplx::ONE - Cplx::from_angle(-w * h)).abs();
        let gain = deriv * m[(0, 0)].abs();
        if gain > 0.0 {
            j_max = j_max.min(1.0 / gain);
        }
    }
    Ok(j_max)
}

/// Assembles the closed loop with an exogenous input entering the plant
/// *state* through column `g` (zero-padded across the delay registers) and
/// the controller output `u` as output.
fn injection_loop(plant_d: &DiscreteSs, ctrl: &DiscreteSs, g: &Mat) -> Result<DiscreteSs> {
    // Reuse the validated plant-input loop for the A matrix, then swap the
    // input matrix for the state injection.
    let base = input_sensitivity_loop(plant_d, ctrl)?;
    let np = plant_d.order();
    let nc = ctrl.order();
    let mut b = Mat::zeros(np + nc, g.cols());
    b.set_block(0, 0, g);
    DiscreteSs::new(
        base.a().clone(),
        b,
        base.c().clone(),
        Mat::zeros(base.outputs(), g.cols()),
        plant_d.period(),
    )
}

/// Computes the delay margin: the largest constant latency keeping the
/// loop nominally stable, found by coarse scan plus bisection, capped at
/// `20 h`.
///
/// # Errors
///
/// Propagates numerical failures.
pub fn delay_margin(plant: &StateSpace, controller: &DiscreteSs, h: f64) -> Result<f64> {
    let cap = JITTER_CAP_PERIODS * h;
    let stable_at = |l: f64| -> Result<bool> {
        let plant_l = c2d_zoh_delayed(plant, h, l)?;
        let loop_sys = input_sensitivity_loop(&plant_l, controller)?;
        Ok(spectral_radius(loop_sys.a())? < 1.0)
    };
    if !stable_at(0.0)? {
        return Ok(0.0);
    }
    // Coarse scan to bracket the boundary.
    let step = h / 4.0;
    let mut lo = 0.0;
    let mut hi = cap;
    let mut found_unstable = false;
    let mut l = step;
    while l <= cap {
        if !stable_at(l)? {
            hi = l;
            found_unstable = true;
            break;
        }
        lo = l;
        l += step;
    }
    if !found_unstable {
        return Ok(cap);
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if stable_at(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-9 * h.max(1e-9) {
            break;
        }
    }
    Ok(lo)
}

/// Sweeps the jitter margin over a latency grid, producing a full
/// stability curve (the paper's Fig. 4).
///
/// The grid spans `[0, delay_margin]` with `points` samples.
///
/// # Errors
///
/// Propagates numerical failures; `points < 2` is rejected.
pub fn stability_curve(
    plant: &StateSpace,
    controller: &DiscreteSs,
    h: f64,
    points: usize,
) -> Result<StabilityCurve> {
    if points < 2 {
        return Err(Error::InvalidParameter("curve needs at least two points"));
    }
    let dm = delay_margin(plant, controller, h)?;
    let mut curve = Vec::with_capacity(points);
    for i in 0..points {
        let l = dm * i as f64 / (points - 1) as f64;
        let j = jitter_margin(plant, controller, h, l)?;
        curve.push(CurvePoint {
            latency: l,
            jitter_margin: j,
        });
    }
    Ok(StabilityCurve {
        points: curve,
        delay_margin: dm,
        period: h,
    })
}

/// The linear lower bound `L + a J <= b` of the paper's Eq. 5, fitted
/// under a [`StabilityCurve`].
///
/// `a >= 1` and `b >= 0` always hold, matching the paper's constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityFit {
    /// Jitter weight `a >= 1`.
    pub a: f64,
    /// Delay budget `b >= 0` (seconds).
    pub b: f64,
}

impl StabilityFit {
    /// Fits the bound to a curve: `b` is the delay margin and `a` the
    /// smallest slope weight (at least 1) keeping the line `J = (b - L)/a`
    /// below every sampled curve point.
    pub fn from_curve(curve: &StabilityCurve) -> StabilityFit {
        let b = curve.delay_margin();
        let mut a = 1.0f64;
        for p in curve.points() {
            if p.jitter_margin > 1e-12 && p.latency < b {
                a = a.max((b - p.latency) / p.jitter_margin);
            }
        }
        StabilityFit { a, b }
    }

    /// The stability test of Eq. 5: `L + a J <= b`.
    ///
    /// # Examples
    ///
    /// ```
    /// use csa_control::StabilityFit;
    ///
    /// let fit = StabilityFit { a: 1.5, b: 0.010 };
    /// assert!(fit.is_stable(0.004, 0.004));
    /// assert!(!fit.is_stable(0.004, 0.005));
    /// ```
    pub fn is_stable(&self, latency: f64, jitter: f64) -> bool {
        latency + self.a * jitter <= self.b
    }

    /// Maximum jitter the linear bound permits at a given latency
    /// (clamped at zero).
    pub fn max_jitter(&self, latency: f64) -> f64 {
        ((self.b - latency) / self.a).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lqg::{design_lqg, LqgWeights};
    use crate::plants;

    fn servo_lqg(h: f64) -> (StateSpace, DiscreteSs) {
        let plant = plants::dc_servo().unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
        let lqg = design_lqg(&plant, &w, h, 0.0).unwrap();
        (plant, lqg.controller)
    }

    #[test]
    fn margin_positive_at_zero_latency() {
        let (plant, ctrl) = servo_lqg(0.006);
        let j = jitter_margin(&plant, &ctrl, 0.006, 0.0).unwrap();
        assert!(j > 0.0, "J_max(0) = {j}");
        assert!(j < 0.12, "J_max(0) = {j} looks unphysically large");
    }

    #[test]
    fn margin_zero_beyond_delay_margin() {
        let (plant, ctrl) = servo_lqg(0.006);
        let dm = delay_margin(&plant, &ctrl, 0.006).unwrap();
        assert!(dm > 0.0);
        let j = jitter_margin(&plant, &ctrl, 0.006, dm * 1.05).unwrap();
        assert_eq!(j, 0.0);
    }

    #[test]
    fn curve_is_broadly_decreasing() {
        let (plant, ctrl) = servo_lqg(0.006);
        let curve = stability_curve(&plant, &ctrl, 0.006, 25).unwrap();
        let pts = curve.points();
        assert_eq!(pts.len(), 25);
        // Endpoints: decreasing overall.
        assert!(pts[0].jitter_margin > pts[pts.len() - 2].jitter_margin);
        // Last point is at the delay margin; margin there is ~0.
        assert!(pts[pts.len() - 1].jitter_margin < 0.35 * pts[0].jitter_margin);
        // Latencies are increasing.
        for w in pts.windows(2) {
            assert!(w[1].latency > w[0].latency);
        }
    }

    #[test]
    fn fit_is_below_curve_with_valid_coefficients() {
        let (plant, ctrl) = servo_lqg(0.006);
        let curve = stability_curve(&plant, &ctrl, 0.006, 30).unwrap();
        let fit = StabilityFit::from_curve(&curve);
        assert!(fit.a >= 1.0, "a = {}", fit.a);
        assert!(fit.b > 0.0, "b = {}", fit.b);
        for p in curve.points() {
            let line = fit.max_jitter(p.latency);
            assert!(
                line <= p.jitter_margin + 1e-12,
                "line {line} above curve {} at L={}",
                p.jitter_margin,
                p.latency
            );
        }
    }

    #[test]
    fn small_gain_margin_within_delay_margin() {
        // Consistency: exhausting the jitter margin as *constant* delay
        // must not exceed the delay margin (constant delay is one
        // admissible realization of the time-varying uncertainty). The
        // criterion linearizes the delay perturbation, so allow a few
        // percent of slack.
        let (plant, ctrl) = servo_lqg(0.006);
        let dm = delay_margin(&plant, &ctrl, 0.006).unwrap();
        let j0 = jitter_margin(&plant, &ctrl, 0.006, 0.0).unwrap();
        assert!(
            j0 <= 1.05 * dm + 1e-9,
            "small-gain jitter margin {j0} exceeds delay margin {dm}"
        );
    }

    #[test]
    fn unstable_plant_has_margins_too() {
        let plant = plants::pendulum().unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-3, 1e-6);
        let h = 0.02;
        let lqg = design_lqg(&plant, &w, h, 0.0).unwrap();
        let j = jitter_margin(&plant, &lqg.controller, h, 0.0).unwrap();
        assert!(j > 0.0);
        let dm = delay_margin(&plant, &lqg.controller, h).unwrap();
        assert!(dm > 0.0 && dm < 20.0 * h);
    }

    #[test]
    fn negative_latency_rejected() {
        let (plant, ctrl) = servo_lqg(0.006);
        assert!(jitter_margin(&plant, &ctrl, 0.006, -0.001).is_err());
    }

    #[test]
    fn curve_needs_two_points() {
        let (plant, ctrl) = servo_lqg(0.006);
        assert!(stability_curve(&plant, &ctrl, 0.006, 1).is_err());
    }
}
