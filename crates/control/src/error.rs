//! Error type for the control substrate.

use std::error::Error as StdError;
use std::fmt;

/// Error returned by control-design routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An underlying linear-algebra routine failed.
    Numerical(csa_linalg::Error),
    /// The sampled system has no stabilizing controller (e.g. unreachable
    /// unstable modes at a pathological sampling period).
    NotStabilizable,
    /// The model violates an assumption of the requested operation.
    UnsupportedModel(&'static str),
    /// A parameter was out of its valid range.
    InvalidParameter(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Numerical(e) => write!(f, "numerical failure: {e}"),
            Error::NotStabilizable => {
                write!(f, "sampled system admits no stabilizing controller")
            }
            Error::UnsupportedModel(what) => write!(f, "unsupported model: {what}"),
            Error::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<csa_linalg::Error> for Error {
    fn from(e: csa_linalg::Error) -> Self {
        Error::Numerical(e)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase() {
        for e in [
            Error::Numerical(csa_linalg::Error::Singular),
            Error::NotStabilizable,
            Error::UnsupportedModel("x"),
            Error::InvalidParameter("y"),
        ] {
            let m = e.to_string();
            assert!(m.chars().next().unwrap().is_lowercase(), "{m}");
        }
    }

    #[test]
    fn source_is_propagated() {
        let e = Error::from(csa_linalg::Error::Singular);
        assert!(StdError::source(&e).is_some());
        assert!(StdError::source(&Error::NotStabilizable).is_none());
    }
}
