//! Retained one-shot reference implementations of the LQG/margin
//! pipeline, exactly as they stood before the batched scratch-space
//! kernels (DESIGN.md §10).
//!
//! These are the ground truth the production kernels are differentially
//! pinned against: [`crate::design_lqg`], [`crate::jitter_margin_exact`],
//! [`crate::delay_margin`], and [`crate::stability_curve_exact`] must
//! reproduce every float these functions produce *bit-for-bit* (enforced
//! by `tests/kernel_differential.rs`), while the fast kernels must agree
//! within the documented tolerance contract. They allocate freely and run
//! the dense `O(n^3)` paths; do not use them outside tests and
//! cross-checks.

use crate::c2d::{c2d_zoh_delayed, delay_split};
use crate::error::{Error, Result};
use crate::freq::discrete_response;
use crate::lqg::{input_sensitivity_loop, map_dare_err, sample_cost, LqgController, LqgWeights};
use crate::margin::{injection_loop, CurvePoint, StabilityCurve};
use crate::ss::{DiscreteSs, StateSpace};
use csa_linalg::{expm, noise_covariance, solve_dare, spectral_radius, Cplx, Mat, StageCost};

/// Frequency grid size of the small-gain sweep (same constant as the
/// production kernel).
const FREQ_POINTS: usize = 600;
/// Jitter/delay margin cap in sampling periods (same constant as the
/// production kernel).
const JITTER_CAP_PERIODS: f64 = 20.0;

/// Reference [`crate::design_lqg`]: one-shot allocating synthesis through
/// [`csa_linalg::solve_dare`].
///
/// # Errors
///
/// Same as [`crate::design_lqg`].
pub fn design_lqg(
    plant: &StateSpace,
    weights: &LqgWeights,
    h: f64,
    tau: f64,
) -> Result<LqgController> {
    let n = plant.order();
    let m = plant.inputs();
    let p = plant.outputs();
    if weights.r1.shape() != (n, n) || weights.r2.shape() != (p, p) {
        return Err(Error::UnsupportedModel(
            "noise dimensions must match the plant",
        ));
    }

    let plant_d = c2d_zoh_delayed(plant, h, tau)?;
    let na = plant_d.order();
    let cost_d = sample_cost(plant, weights, h)?;

    let mut q_aug = Mat::zeros(na, na);
    q_aug.set_block(0, 0, &cost_d.q1);
    let mut n_aug = Mat::zeros(na, m);
    n_aug.set_block(0, 0, &cost_d.q12);
    for i in n..na {
        q_aug[(i, i)] += 1e-12;
    }
    let stage = StageCost::with_cross(q_aug, n_aug, cost_d.q2.clone());
    let lqr = solve_dare(plant_d.a(), plant_d.b(), &stage).map_err(map_dare_err)?;

    let phi = plant_d.a().block(0, 0, n, n);
    let c = plant.c().clone();
    let r1d = noise_covariance(plant.a(), &weights.r1, h)?;
    let r1d_reg = &r1d + &Mat::identity(n).scale(1e-12 * r1d.max_abs().max(1e-12));
    let dual = solve_dare(
        &phi.transpose(),
        &c.transpose(),
        &StageCost::new(r1d_reg, weights.r2.clone()),
    )
    .map_err(map_dare_err)?;
    let kf = dual.k.transpose();

    let mut kf_aug = Mat::zeros(na, p);
    kf_aug.set_block(0, 0, &kf);
    let a_c = &(plant_d.a() - &(plant_d.b() * &lqr.k)) - &(&kf_aug * plant_d.c());
    let c_c = -(&lqr.k);
    let controller = DiscreteSs::new(a_c, kf_aug, c_c, Mat::zeros(m, p), h)?;

    Ok(LqgController {
        controller,
        feedback_gain: lqr.k,
        kalman_gain: kf,
        cost_to_go: lqr.s,
        plant_d,
        noise_d: r1d,
        cost_d,
    })
}

/// Reference [`crate::jitter_margin`]: dense per-frequency solves through
/// [`discrete_response`].
///
/// # Errors
///
/// Same as [`crate::jitter_margin`].
pub fn jitter_margin(
    plant: &StateSpace,
    controller: &DiscreteSs,
    h: f64,
    latency: f64,
) -> Result<f64> {
    if !(latency.is_finite() && latency >= 0.0) {
        return Err(Error::InvalidParameter("latency must be non-negative"));
    }
    let plant_l = c2d_zoh_delayed(plant, h, latency)?;
    let (_, tau_frac) = delay_split(h, latency);
    let g = &expm(&plant.a().scale(h - tau_frac))? * plant.b();
    let loop_sys = injection_loop(&plant_l, controller, &g)?;
    if spectral_radius(loop_sys.a())? >= 1.0 {
        return Ok(0.0);
    }
    let cap = JITTER_CAP_PERIODS * h;
    let mut j_max = cap;
    let w_max = std::f64::consts::PI / h;
    let w_min = w_max / 1e4;
    let log_step = (w_max / w_min).ln() / (FREQ_POINTS - 1) as f64;
    for i in 0..FREQ_POINTS {
        let w = w_min * (log_step * i as f64).exp();
        let m = discrete_response(&loop_sys, w)?;
        let deriv = (Cplx::ONE - Cplx::from_angle(-w * h)).abs();
        let gain = deriv * m[(0, 0)].abs();
        if gain > 0.0 {
            j_max = j_max.min(1.0 / gain);
        }
    }
    Ok(j_max)
}

/// Reference [`crate::delay_margin`]: coarse scan plus bisection with
/// one-shot spectral radii.
///
/// # Errors
///
/// Same as [`crate::delay_margin`].
pub fn delay_margin(plant: &StateSpace, controller: &DiscreteSs, h: f64) -> Result<f64> {
    let cap = JITTER_CAP_PERIODS * h;
    let stable_at = |l: f64| -> Result<bool> {
        let plant_l = c2d_zoh_delayed(plant, h, l)?;
        let loop_sys = input_sensitivity_loop(&plant_l, controller)?;
        Ok(spectral_radius(loop_sys.a())? < 1.0)
    };
    if !stable_at(0.0)? {
        return Ok(0.0);
    }
    let step = h / 4.0;
    let mut lo = 0.0;
    let mut hi = cap;
    let mut found_unstable = false;
    let mut l = step;
    while l <= cap {
        if !stable_at(l)? {
            hi = l;
            found_unstable = true;
            break;
        }
        lo = l;
        l += step;
    }
    if !found_unstable {
        return Ok(cap);
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if stable_at(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-9 * h.max(1e-9) {
            break;
        }
    }
    Ok(lo)
}

/// Reference [`crate::stability_curve`]: latency sweep over the two
/// reference margins above.
///
/// # Errors
///
/// Same as [`crate::stability_curve`].
pub fn stability_curve(
    plant: &StateSpace,
    controller: &DiscreteSs,
    h: f64,
    points: usize,
) -> Result<StabilityCurve> {
    if points < 2 {
        return Err(Error::InvalidParameter("curve needs at least two points"));
    }
    let dm = delay_margin(plant, controller, h)?;
    let mut curve = Vec::with_capacity(points);
    for i in 0..points {
        let l = dm * i as f64 / (points - 1) as f64;
        let j = jitter_margin(plant, controller, h, l)?;
        curve.push(CurvePoint {
            latency: l,
            jitter_margin: j,
        });
    }
    Ok(StabilityCurve::from_parts(curve, dm, h))
}
