//! Zero-order-hold discretization, with and without input delay.
//!
//! The control signal computed by a scheduled task is applied through a
//! zero-order hold, `tau` seconds after the sampling instant (`tau` is the
//! task's latency). Following Åström & Wittenmark (Computer-Controlled
//! Systems §3.2), a delay `tau = d*h + tau'` with `0 <= tau' < h` yields
//!
//! ```text
//! x_{k+1} = Phi x_k + Gamma1 u_{k-d-1} + Gamma0 u_{k-d}
//! Gamma0  = int_0^{h - tau'} e^{As} ds B
//! Gamma1  = e^{A (h - tau')} int_0^{tau'} e^{As} ds B
//! ```
//!
//! and the past inputs are appended to the state so the result is again a
//! standard (delay-free) discrete system.

use crate::error::{Error, Result};
use crate::ss::{DiscreteSs, StateSpace};
use csa_linalg::{zoh, Mat};

/// Discretizes `sys` with a zero-order hold at period `h` (no delay).
///
/// # Errors
///
/// Propagates numerical failures; rejects non-positive `h`.
///
/// # Examples
///
/// ```
/// use csa_control::{c2d_zoh, TransferFunction};
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let sys = TransferFunction::new(vec![1.0], vec![1.0, 1.0])?.to_state_space()?;
/// let d = c2d_zoh(&sys, 0.1)?;
/// assert!((d.a()[(0, 0)] - (-0.1f64).exp()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn c2d_zoh(sys: &StateSpace, h: f64) -> Result<DiscreteSs> {
    if !(h.is_finite() && h > 0.0) {
        return Err(Error::InvalidParameter("sampling period must be positive"));
    }
    let pair = zoh(sys.a(), sys.b(), h)?;
    DiscreteSs::new(pair.phi, pair.gamma, sys.c().clone(), sys.d().clone(), h)
}

/// Discretizes `sys` with a zero-order hold at period `h` and a constant
/// input delay `tau >= 0`, augmenting the state with as many past inputs
/// as the delay spans.
///
/// The augmented state is `[x; u_{k-m}; ...; u_{k-1}]` where `m` is the
/// number of stored past inputs; the output equation reads the plant state
/// only.
///
/// # Errors
///
/// [`Error::UnsupportedModel`] if the plant has direct feedthrough
/// (`D != 0`) — a delayed ZOH of a non-strictly-proper plant is not
/// meaningful here; [`Error::InvalidParameter`] for negative `tau` or
/// non-positive `h`.
///
/// # Examples
///
/// ```
/// use csa_control::{c2d_zoh_delayed, TransferFunction};
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let sys = TransferFunction::new(vec![1.0], vec![1.0, 0.0])?.to_state_space()?;
/// // Integrator, h = 1, delay 0.25: one past input is stored.
/// let d = c2d_zoh_delayed(&sys, 1.0, 0.25)?;
/// assert_eq!(d.order(), 2);
/// # Ok(())
/// # }
/// ```
pub fn c2d_zoh_delayed(sys: &StateSpace, h: f64, tau: f64) -> Result<DiscreteSs> {
    if !(h.is_finite() && h > 0.0) {
        return Err(Error::InvalidParameter("sampling period must be positive"));
    }
    if !(tau.is_finite() && tau >= 0.0) {
        return Err(Error::InvalidParameter("delay must be non-negative"));
    }
    if sys.d().max_abs() != 0.0 {
        return Err(Error::UnsupportedModel(
            "delayed discretization requires a strictly proper plant (D = 0)",
        ));
    }
    if tau == 0.0 {
        return c2d_zoh(sys, h);
    }
    let n = sys.order();
    let m_in = sys.inputs();

    let (d, tau_frac) = delay_split(h, tau);

    let full = zoh(sys.a(), sys.b(), h)?;
    let phi = full.phi.clone();

    // Number of stored past inputs and the per-column split of influence.
    // For tau' > 0:   x+ = Phi x + Gamma1 u_{k-d-1} + Gamma0 u_{k-d}; m = d+1.
    // For tau' == 0:  x+ = Phi x + Gamma  u_{k-d};                  m = d.
    let (stored, gamma1, gamma0) = if tau_frac > 0.0 {
        let head = zoh(sys.a(), sys.b(), h - tau_frac)?; // Gamma0 and e^{A(h-tau')}
        let tail = zoh(sys.a(), sys.b(), tau_frac)?; // int_0^{tau'} e^{As} ds B
        let gamma1 = &head.phi * &tail.gamma;
        (d + 1, Some(gamma1), head.gamma)
    } else {
        (d, None, full.gamma)
    };

    if stored == 0 {
        return c2d_zoh(sys, h);
    }

    // Augmented system dimensions.
    let na = n + stored * m_in;
    let mut a_aug = Mat::zeros(na, na);
    a_aug.set_block(0, 0, &phi);
    // Past inputs occupy slots [u_{k-stored}, ..., u_{k-1}] at offsets
    // n + j*m_in for j = 0..stored (oldest first).
    match &gamma1 {
        Some(g1) => {
            // Oldest slot: u_{k-d-1} -> Gamma1; next: u_{k-d} -> Gamma0.
            a_aug.set_block(0, n, g1);
            if stored >= 2 {
                a_aug.set_block(0, n + m_in, &gamma0);
            }
        }
        None => {
            // u_{k-d} is the oldest stored input.
            a_aug.set_block(0, n, &gamma0);
        }
    }
    // Shift register: slot j takes the value of slot j+1.
    for j in 0..stored.saturating_sub(1) {
        a_aug.set_block(n + j * m_in, n + (j + 1) * m_in, &Mat::identity(m_in));
    }

    let mut b_aug = Mat::zeros(na, m_in);
    if gamma1.is_none() && stored == 1 {
        // tau' == 0 and d == 1: the newest stored slot feeds nothing in A;
        // B writes into the register.
        b_aug.set_block(n, 0, &Mat::identity(m_in));
    } else {
        // The newest register slot receives u_k.
        b_aug.set_block(n + (stored - 1) * m_in, 0, &Mat::identity(m_in));
    }
    // Special case: tau' > 0 and d == 0 (delay within one period): the
    // register has exactly one slot holding u_{k-1}, and u_k also directly
    // drives the plant through Gamma0.
    let mut direct = Mat::zeros(n, m_in);
    if gamma1.is_some() && stored == 1 {
        direct = gamma0.clone();
    }
    b_aug.set_block(0, 0, &direct);

    let mut c_aug = Mat::zeros(sys.outputs(), na);
    c_aug.set_block(0, 0, sys.c());
    let d_aug = Mat::zeros(sys.outputs(), m_in);
    DiscreteSs::new(a_aug, b_aug, c_aug, d_aug, h)
}

/// Splits a delay into whole periods and a fractional remainder:
/// `tau = d*h + tau'` with `0 <= tau' < h`, guarding the boundary where
/// floating-point division lands infinitesimally below an integer.
pub(crate) fn delay_split(h: f64, tau: f64) -> (usize, f64) {
    let mut d = (tau / h).floor() as usize;
    let mut tau_frac = tau - d as f64 * h;
    if tau_frac >= h - 1e-12 * h {
        d += 1;
        tau_frac = 0.0;
    }
    if tau_frac < 1e-12 * h {
        tau_frac = 0.0;
    }
    (d, tau_frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ss::TransferFunction;

    fn integrator() -> StateSpace {
        TransferFunction::new(vec![1.0], vec![1.0, 0.0])
            .unwrap()
            .to_state_space()
            .unwrap()
    }

    fn lag() -> StateSpace {
        TransferFunction::new(vec![1.0], vec![1.0, 1.0])
            .unwrap()
            .to_state_space()
            .unwrap()
    }

    /// Step the discrete system with a given input sequence; returns states.
    fn simulate(d: &DiscreteSs, inputs: &[f64], steps: usize) -> Vec<f64> {
        let n = d.order();
        let mut x = Mat::zeros(n, 1);
        let mut ys = Vec::new();
        for k in 0..steps {
            let u = Mat::scalar(inputs.get(k).copied().unwrap_or(0.0));
            ys.push((&(d.c() * &x) + &(d.d() * &u))[(0, 0)]);
            x = &(d.a() * &x) + &(d.b() * &u);
        }
        ys
    }

    #[test]
    fn zero_delay_matches_plain_zoh() {
        let sys = lag();
        let a = c2d_zoh(&sys, 0.2).unwrap();
        let b = c2d_zoh_delayed(&sys, 0.2, 0.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn integrator_fractional_delay_closed_form() {
        // Integrator x' = u, h = 1, tau = 0.25:
        // x_{k+1} = x_k + 0.25 u_{k-1} + 0.75 u_k.
        let d = c2d_zoh_delayed(&integrator(), 1.0, 0.25).unwrap();
        assert_eq!(d.order(), 2);
        // Step input from k=0: x0 = 0; x1 = 0.75; x2 = 0.75 + 0.25 + 0.75 = 1.75.
        let ys = simulate(&d, &[1.0, 1.0, 1.0, 1.0], 4);
        assert!((ys[1] - 0.75).abs() < 1e-12, "got {}", ys[1]);
        assert!((ys[2] - 1.75).abs() < 1e-12, "got {}", ys[2]);
        assert!((ys[3] - 2.75).abs() < 1e-12, "got {}", ys[3]);
    }

    #[test]
    fn integrator_full_period_delay() {
        // tau = h: x_{k+1} = x_k + h * u_{k-1}.
        let d = c2d_zoh_delayed(&integrator(), 1.0, 1.0).unwrap();
        assert_eq!(d.order(), 2);
        let ys = simulate(&d, &[1.0, 1.0, 1.0], 4);
        assert!((ys[1] - 0.0).abs() < 1e-9, "got {}", ys[1]);
        assert!((ys[2] - 1.0).abs() < 1e-9, "got {}", ys[2]);
        assert!((ys[3] - 2.0).abs() < 1e-9, "got {}", ys[3]);
    }

    #[test]
    fn integrator_multi_period_delay() {
        // tau = 2.5 h: d=2, tau'=0.5: three stored inputs.
        // x_{k+1} = x_k + 0.5 u_{k-3} + 0.5 u_{k-2}.
        let d = c2d_zoh_delayed(&integrator(), 1.0, 2.5).unwrap();
        assert_eq!(d.order(), 4);
        // Unit pulse at k=0: contribution 0.5 at k=3 and 0.5 at k=4.
        let ys = simulate(&d, &[1.0], 6);
        assert!((ys[2] - 0.0).abs() < 1e-9);
        assert!((ys[3] - 0.5).abs() < 1e-9, "got {}", ys[3]);
        assert!((ys[4] - 1.0).abs() < 1e-9, "got {}", ys[4]);
        assert!((ys[5] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn delayed_step_matches_continuous_solution() {
        // First-order lag, step applied with delay tau: at t = kh the state
        // is 1 - e^{-(t - tau)} for t >= tau.
        let h = 0.3;
        let tau = 0.17;
        let d = c2d_zoh_delayed(&lag(), h, tau).unwrap();
        let ys = simulate(&d, &[1.0; 10], 10);
        for (k, &yk) in ys.iter().enumerate().skip(2) {
            let t = k as f64 * h;
            let expect = 1.0 - (-(t - tau)).exp();
            assert!((yk - expect).abs() < 1e-10, "k={k}: {yk} vs {expect}");
        }
    }

    #[test]
    fn delay_beyond_period_matches_continuous_solution() {
        let h = 0.25;
        let tau = 0.6; // d = 2, tau' = 0.1
        let d = c2d_zoh_delayed(&lag(), h, tau).unwrap();
        assert_eq!(d.order(), 1 + 3);
        let ys = simulate(&d, &[1.0; 12], 12);
        for (k, &yk) in ys.iter().enumerate().skip(4) {
            let t = k as f64 * h;
            let expect = 1.0 - (-(t - tau)).exp();
            assert!((yk - expect).abs() < 1e-10, "k={k}: {yk} vs {expect}");
        }
    }

    #[test]
    fn boundary_delay_snaps_to_whole_periods() {
        // tau within floating noise of h must behave like tau = h.
        let d1 = c2d_zoh_delayed(&lag(), 0.1, 0.1).unwrap();
        let d2 = c2d_zoh_delayed(&lag(), 0.1, 0.1 - 1e-15).unwrap();
        assert_eq!(d1.order(), d2.order());
    }

    #[test]
    fn feedthrough_rejected() {
        let bi = TransferFunction::new(vec![1.0, 2.0], vec![1.0, 1.0])
            .unwrap()
            .to_state_space()
            .unwrap();
        assert!(matches!(
            c2d_zoh_delayed(&bi, 0.1, 0.05),
            Err(Error::UnsupportedModel(_))
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let sys = lag();
        assert!(c2d_zoh(&sys, 0.0).is_err());
        assert!(c2d_zoh_delayed(&sys, 0.1, -0.1).is_err());
        assert!(c2d_zoh_delayed(&sys, -0.1, 0.1).is_err());
    }
}
