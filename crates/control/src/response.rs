//! Time-domain responses of discrete systems and closed loops.
//!
//! Used by the examples to show what "stable" and "unstable" mean in
//! signal terms, and by tests as an independent (simulation-based) check
//! of the eigenvalue-based stability verdicts.

use crate::error::{Error, Result};
use crate::lqg::input_sensitivity_loop;
use crate::ss::DiscreteSs;
use csa_linalg::Mat;

/// Simulates `x+ = A x + B u`, `y = C x + D u` from initial state `x0`
/// over the given input sequence; returns the outputs per step.
///
/// # Errors
///
/// [`Error::UnsupportedModel`] on dimension mismatches.
///
/// # Examples
///
/// ```
/// use csa_control::{simulate, DiscreteSs};
/// use csa_linalg::Mat;
///
/// # fn main() -> Result<(), csa_control::Error> {
/// // One-pole low pass: y converges to 1 under a unit step.
/// let sys = DiscreteSs::new(
///     Mat::scalar(0.5), Mat::scalar(0.5), Mat::scalar(1.0), Mat::scalar(0.0), 1.0,
/// )?;
/// let y = simulate(&sys, &Mat::zeros(1, 1), &vec![Mat::scalar(1.0); 30])?;
/// assert!((y.last().unwrap()[(0, 0)] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn simulate(sys: &DiscreteSs, x0: &Mat, inputs: &[Mat]) -> Result<Vec<Mat>> {
    if x0.shape() != (sys.order(), 1) {
        return Err(Error::UnsupportedModel("x0 must be a state-sized column"));
    }
    let mut x = x0.clone();
    let mut outputs = Vec::with_capacity(inputs.len());
    for u in inputs {
        if u.shape() != (sys.inputs(), 1) {
            return Err(Error::UnsupportedModel(
                "input must be an input-sized column",
            ));
        }
        outputs.push(&(sys.c() * &x) + &(sys.d() * u));
        x = &(sys.a() * &x) + &(sys.b() * u);
    }
    Ok(outputs)
}

/// Unit step response of a SISO discrete system over `steps` samples.
///
/// # Errors
///
/// [`Error::UnsupportedModel`] if the system is not SISO.
pub fn step_response(sys: &DiscreteSs, steps: usize) -> Result<Vec<f64>> {
    if sys.inputs() != 1 || sys.outputs() != 1 {
        return Err(Error::UnsupportedModel("step response requires SISO"));
    }
    let inputs = vec![Mat::scalar(1.0); steps];
    Ok(simulate(sys, &Mat::zeros(sys.order(), 1), &inputs)?
        .into_iter()
        .map(|y| y[(0, 0)])
        .collect())
}

/// Response of the closed loop (plant + controller) to a unit impulse of
/// plant-input disturbance: returns the controller-output sequence. For
/// a stable loop this decays to zero; for an unstable one it diverges —
/// the time-domain face of the jitter-margin analysis.
///
/// # Errors
///
/// Propagates loop-assembly errors (periods/dimensions).
pub fn disturbance_impulse_response(
    plant_d: &DiscreteSs,
    controller: &DiscreteSs,
    steps: usize,
) -> Result<Vec<f64>> {
    let loop_sys = input_sensitivity_loop(plant_d, controller)?;
    let mut inputs = vec![Mat::zeros(1, 1); steps];
    if let Some(first) = inputs.first_mut() {
        *first = Mat::scalar(1.0);
    }
    Ok(
        simulate(&loop_sys, &Mat::zeros(loop_sys.order(), 1), &inputs)?
            .into_iter()
            .map(|y| y[(0, 0)])
            .collect(),
    )
}

/// Peak absolute value of the tail (second half) of a signal — a simple
/// divergence detector for tests and examples.
pub fn tail_peak(signal: &[f64]) -> f64 {
    let half = signal.len() / 2;
    signal[half..].iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c2d::{c2d_zoh, c2d_zoh_delayed};
    use crate::lqg::{design_lqg, LqgWeights};
    use crate::plants;

    #[test]
    fn step_response_of_lag_matches_closed_form() {
        let sys = plants::first_order_lag().unwrap();
        let h = 0.1;
        let d = c2d_zoh(&sys, h).unwrap();
        let y = step_response(&d, 50).unwrap();
        for (k, &yk) in y.iter().enumerate() {
            // ZOH sampling of 1 - e^{-t} at t = k h (output before the
            // k-th update uses x_k).
            let expect = 1.0 - (-(k as f64) * h).exp();
            assert!((yk - expect).abs() < 1e-10, "k={k}: {yk} vs {expect}");
        }
    }

    #[test]
    fn stable_loop_impulse_decays() {
        let plant = plants::dc_servo().unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-1, 1e-6);
        let h = 0.006;
        let lqg = design_lqg(&plant, &w, h, 0.0).unwrap();
        let resp = disturbance_impulse_response(&lqg.plant_d, &lqg.controller, 400).unwrap();
        let head: f64 = resp[..20].iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(head > 0.0, "disturbance must excite the loop");
        assert!(
            tail_peak(&resp) < 1e-3 * head,
            "stable loop must ring down: head {head}, tail {}",
            tail_peak(&resp)
        );
    }

    #[test]
    fn over_delayed_loop_impulse_diverges() {
        // Latency far beyond the delay margin destabilizes the loop; the
        // impulse response must grow. (Time-domain confirmation of the
        // margin analysis.)
        let plant = plants::dc_servo().unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-1, 1e-6);
        let h = 0.006;
        let lqg = design_lqg(&plant, &w, h, 0.0).unwrap();
        let dm = crate::margin::delay_margin(&plant, &lqg.controller, h).unwrap();
        let plant_late = c2d_zoh_delayed(&plant, h, dm * 1.5).unwrap();
        let resp = disturbance_impulse_response(&plant_late, &lqg.controller, 600).unwrap();
        let head: f64 = resp[..20].iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(
            tail_peak(&resp) > 10.0 * head.max(1e-9),
            "unstable loop must diverge: head {head}, tail {}",
            tail_peak(&resp)
        );
    }

    #[test]
    fn simulate_validates_dimensions() {
        let sys = c2d_zoh(&plants::first_order_lag().unwrap(), 0.1).unwrap();
        assert!(simulate(&sys, &Mat::zeros(2, 1), &[]).is_err());
        assert!(simulate(&sys, &Mat::zeros(1, 1), &[Mat::zeros(2, 1)]).is_err());
    }
}
