//! Sampled LQG controller synthesis.
//!
//! Given a continuous plant (Eq. 1 of the paper), a sampling period `h`,
//! and a nominal input delay `tau`, this module designs the discrete
//! observer-based LQG controller used throughout the reproduction:
//!
//! 1. the plant and the continuous quadratic cost are sampled exactly
//!    (Van Loan integrals), producing `(Phi, Gamma)` and `(Q1d, Q12d, Q2d)`;
//! 2. the state-feedback gain solves the DARE on the delay-augmented
//!    system (the delay registers carry the in-flight control values);
//! 3. a stationary Kalman predictor estimates the plant state; the delay
//!    registers need no estimation — they are the controller's own past
//!    outputs.
//!
//! The resulting controller is returned both as gains and as a standalone
//! LTI system (input `y`, output `u`) for frequency-domain analysis.

use crate::c2d::c2d_zoh_delayed;
use crate::error::{Error, Result};
use crate::ss::{DiscreteSs, StateSpace};
use csa_linalg::{noise_covariance, van_loan_gramian, DareScratch, DareSolution, Mat, StageCost};

/// Continuous-time design weights for sampled LQG synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct LqgWeights {
    /// Continuous state cost `Q1c` (n x n, PSD).
    pub q1: Mat,
    /// Continuous input cost `Q2c` (m x m, positive definite).
    pub q2: Mat,
    /// Process-noise intensity `R1c` (n x n, PSD).
    pub r1: Mat,
    /// Discrete measurement-noise covariance `R2` (p x p, positive definite).
    pub r2: Mat,
}

impl LqgWeights {
    /// Standard output-regulation weights for a SISO plant:
    /// `Q1c = C^T C`, `Q2c = rho`, `R1c = B B^T`, `R2 = sigma`.
    ///
    /// These mirror the choices customary in the jitter-margin literature:
    /// penalize the controlled output, inject process noise at the plant
    /// input.
    pub fn output_regulation(plant: &StateSpace, rho: f64, sigma: f64) -> Self {
        let q1 = &plant.c().transpose() * plant.c();
        let r1 = plant.b() * &plant.b().transpose();
        LqgWeights {
            q1,
            q2: Mat::identity(plant.inputs()).scale(rho),
            r1,
            r2: Mat::identity(plant.outputs()).scale(sigma),
        }
    }
}

/// The discrete stage cost obtained by exactly sampling a continuous
/// quadratic cost over one period (Van Loan on the `[A B; 0 0]`
/// augmentation).
#[derive(Debug, Clone)]
pub struct SampledCost {
    /// State block `Q1d`.
    pub q1: Mat,
    /// Cross block `Q12d`.
    pub q12: Mat,
    /// Input block `Q2d`.
    pub q2: Mat,
}

/// Samples the continuous cost `int x'Q1c x + u'Q2c u dt` over one period.
///
/// # Errors
///
/// Propagates numerical failures.
///
/// # Examples
///
/// ```
/// use csa_control::{sample_cost, LqgWeights, TransferFunction};
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let plant = TransferFunction::new(vec![1.0], vec![1.0, 1.0])?.to_state_space()?;
/// let w = LqgWeights::output_regulation(&plant, 0.1, 1e-4);
/// let cost = sample_cost(&plant, &w, 0.01)?;
/// assert!(cost.q1[(0, 0)] > 0.0);
/// assert!(cost.q2[(0, 0)] > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn sample_cost(plant: &StateSpace, weights: &LqgWeights, h: f64) -> Result<SampledCost> {
    let n = plant.order();
    let m = plant.inputs();
    if weights.q1.shape() != (n, n) || weights.q2.shape() != (m, m) {
        return Err(Error::UnsupportedModel(
            "weight dimensions must match the plant",
        ));
    }
    // Augmented drift: z = [x; u], z' = [[A, B], [0, 0]] z while u is held.
    let mut abar = Mat::zeros(n + m, n + m);
    abar.set_block(0, 0, plant.a());
    abar.set_block(0, n, plant.b());
    let mut qbar = Mat::zeros(n + m, n + m);
    qbar.set_block(0, 0, &weights.q1);
    qbar.set_block(n, n, &weights.q2);
    let (_, qd) = van_loan_gramian(&abar, &qbar, h)?;
    Ok(SampledCost {
        q1: qd.block(0, 0, n, n),
        q12: qd.block(0, n, n, m),
        q2: qd.block(n, n, m, m),
    })
}

/// A synthesized sampled LQG controller.
#[derive(Debug, Clone)]
pub struct LqgController {
    /// The controller as an LTI system: input `y`, output `u` (the
    /// feedback sign is already folded in, `u = -K xhat`).
    pub controller: DiscreteSs,
    /// LQR gain on the delay-augmented state.
    pub feedback_gain: Mat,
    /// Kalman predictor gain on the plant block.
    pub kalman_gain: Mat,
    /// DARE cost-to-go matrix on the augmented state.
    pub cost_to_go: Mat,
    /// The delay-augmented discrete plant the design was carried out on.
    pub plant_d: DiscreteSs,
    /// Discretized process-noise covariance (plant block).
    pub noise_d: Mat,
    /// Sampled stage cost used for the LQR design.
    pub cost_d: SampledCost,
}

/// Designs a sampled LQG controller for `plant` at period `h` with a
/// nominal input delay `tau` (seconds).
///
/// # Errors
///
/// [`Error::NotStabilizable`] when the sampled pair cannot be stabilized or
/// detected (this is the paper's "pathological sampling period" situation),
/// other [`Error`] variants on dimension or parameter problems.
///
/// # Examples
///
/// ```
/// use csa_control::{design_lqg, plants, LqgWeights};
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let plant = plants::dc_servo()?;
/// let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
/// let lqg = design_lqg(&plant, &w, 0.006, 0.0)?;
/// assert_eq!(lqg.controller.inputs(), 1);
/// assert_eq!(lqg.controller.outputs(), 1);
/// # Ok(())
/// # }
/// ```
pub fn design_lqg(
    plant: &StateSpace,
    weights: &LqgWeights,
    h: f64,
    tau: f64,
) -> Result<LqgController> {
    LqgDesigner::cold().design(plant, weights, h, tau)
}

/// Re-entrant LQG synthesis engine with optional DARE warm starting (the
/// batched pipeline of DESIGN.md §10).
///
/// A cold designer ([`LqgDesigner::cold`]) routes both Riccati equations
/// through [`DareScratch::solve`], which is bit-identical to the one-shot
/// [`csa_linalg::solve_dare`] — [`design_lqg`] is a thin wrapper over it. A
/// warm-started designer ([`LqgDesigner::warm_started`]) seeds each DARE
/// with the previous successful design's solution via
/// [`DareScratch::solve_warm`]; when sweeping a period grid the
/// neighbouring solutions are excellent seeds and the Kleinman iteration
/// converges in a couple of Newton steps. The warm path inherits
/// `solve_warm`'s contract: the gain is always verified stabilizing, any
/// unusable seed falls back to the bit-exact cold solve, and successful
/// warm solutions agree with cold ones to ~1e-9 relative.
#[derive(Debug)]
pub struct LqgDesigner {
    ctrl_dare: DareScratch,
    filt_dare: DareScratch,
    warm: bool,
    prev_ctrl: Option<DareSolution>,
    prev_filt: Option<DareSolution>,
}

impl LqgDesigner {
    /// A designer whose every output is bit-identical to [`design_lqg`].
    pub fn cold() -> Self {
        LqgDesigner {
            ctrl_dare: DareScratch::new(),
            filt_dare: DareScratch::new(),
            warm: false,
            prev_ctrl: None,
            prev_filt: None,
        }
    }

    /// A designer that warm-starts each DARE from the previous design.
    pub fn warm_started() -> Self {
        LqgDesigner {
            warm: true,
            ..LqgDesigner::cold()
        }
    }

    /// Drops the warm-start seeds (e.g. when switching plants).
    pub fn reset(&mut self) {
        self.prev_ctrl = None;
        self.prev_filt = None;
    }

    /// Designs a sampled LQG controller; semantics of [`design_lqg`].
    ///
    /// # Errors
    ///
    /// Same as [`design_lqg`].
    pub fn design(
        &mut self,
        plant: &StateSpace,
        weights: &LqgWeights,
        h: f64,
        tau: f64,
    ) -> Result<LqgController> {
        let n = plant.order();
        let m = plant.inputs();
        let p = plant.outputs();
        if weights.r1.shape() != (n, n) || weights.r2.shape() != (p, p) {
            return Err(Error::UnsupportedModel(
                "noise dimensions must match the plant",
            ));
        }

        let plant_d = c2d_zoh_delayed(plant, h, tau)?;
        let na = plant_d.order();
        let cost_d = sample_cost(plant, weights, h)?;

        // Stage cost on the augmented state: charge the plant block with Q1d,
        // the decided input with Q2d, and keep the exact cross term between
        // the plant state and the decided input. The delay registers carry
        // already-paid-for inputs and enter with zero weight (see DESIGN.md).
        let mut q_aug = Mat::zeros(na, na);
        q_aug.set_block(0, 0, &cost_d.q1);
        let mut n_aug = Mat::zeros(na, m);
        n_aug.set_block(0, 0, &cost_d.q12);
        // Regularize the delay registers minutely so the DARE stays
        // detectable through the shift chain.
        for i in n..na {
            q_aug[(i, i)] += 1e-12;
        }
        let stage = StageCost::with_cross(q_aug, n_aug, cost_d.q2.clone());
        let lqr = match (self.warm, &self.prev_ctrl) {
            (true, Some(seed)) => self
                .ctrl_dare
                .solve_warm(plant_d.a(), plant_d.b(), &stage, seed),
            _ => self.ctrl_dare.solve(plant_d.a(), plant_d.b(), &stage),
        }
        .map_err(map_dare_err)?;

        // Stationary Kalman predictor on the plant block (delay registers are
        // known exactly).
        let phi = plant_d.a().block(0, 0, n, n);
        let c = plant.c().clone();
        let r1d = noise_covariance(plant.a(), &weights.r1, h)?;
        // Regularize: guarantee the dual pair is stabilizable even if R1c is
        // rank deficient along undisturbed directions.
        let r1d_reg = &r1d + &Mat::identity(n).scale(1e-12 * r1d.max_abs().max(1e-12));
        let dual_cost = StageCost::new(r1d_reg, weights.r2.clone());
        let phi_t = phi.transpose();
        let c_t = c.transpose();
        let dual = match (self.warm, &self.prev_filt) {
            (true, Some(seed)) => self.filt_dare.solve_warm(&phi_t, &c_t, &dual_cost, seed),
            _ => self.filt_dare.solve(&phi_t, &c_t, &dual_cost),
        }
        .map_err(map_dare_err)?;
        let kf = dual.k.transpose(); // Kf = Phi P C' (C P C' + R2)^{-1}

        if self.warm {
            self.prev_ctrl = Some(lqr.clone());
            self.prev_filt = Some(dual.clone());
        }

        // Controller realization on the augmented state:
        // xi+ = (A - B K - Kf_aug C_aug) xi + Kf_aug y,  u = -K xi.
        let mut kf_aug = Mat::zeros(na, p);
        kf_aug.set_block(0, 0, &kf);
        let a_c = &(plant_d.a() - &(plant_d.b() * &lqr.k)) - &(&kf_aug * plant_d.c());
        let c_c = -(&lqr.k);
        let controller = DiscreteSs::new(a_c, kf_aug, c_c, Mat::zeros(m, p), h)?;

        Ok(LqgController {
            controller,
            feedback_gain: lqr.k,
            kalman_gain: kf,
            cost_to_go: lqr.s,
            plant_d,
            noise_d: r1d,
            cost_d,
        })
    }
}

/// Maps DARE failures onto the domain error.
pub(crate) fn map_dare_err(e: csa_linalg::Error) -> Error {
    match e {
        csa_linalg::Error::NotStable | csa_linalg::Error::NoConvergence { .. } => {
            Error::NotStabilizable
        }
        other => Error::Numerical(other),
    }
}

/// Assembles the closed loop of a discrete plant and controller, exposing
/// the transfer from a plant-input disturbance `w` to the controller
/// output `u` — the loop function whose magnitude the jitter-margin
/// criterion bounds.
///
/// Both systems must share the sampling period, the controller must be
/// strictly proper (no algebraic loop), and dimensions must close the loop.
///
/// # Errors
///
/// [`Error::UnsupportedModel`] on mismatched periods/dimensions or a
/// non-strictly-proper controller.
pub fn input_sensitivity_loop(plant_d: &DiscreteSs, ctrl: &DiscreteSs) -> Result<DiscreteSs> {
    if (plant_d.period() - ctrl.period()).abs() > 1e-12 * plant_d.period() {
        return Err(Error::UnsupportedModel(
            "plant and controller periods differ",
        ));
    }
    if plant_d.outputs() != ctrl.inputs() || ctrl.outputs() != plant_d.inputs() {
        return Err(Error::UnsupportedModel(
            "plant/controller dimensions do not close",
        ));
    }
    if ctrl.d().max_abs() != 0.0 {
        return Err(Error::UnsupportedModel(
            "controller must be strictly proper",
        ));
    }
    let np = plant_d.order();
    let nc = ctrl.order();
    let m = plant_d.inputs();
    // x_p+ = A_p x_p + B_p(u + w); x_c+ = A_c x_c + B_c C_p x_p; u = C_c x_c.
    let mut a = Mat::zeros(np + nc, np + nc);
    a.set_block(0, 0, plant_d.a());
    a.set_block(0, np, &(plant_d.b() * ctrl.c()));
    a.set_block(np, 0, &(ctrl.b() * plant_d.c()));
    a.set_block(np, np, ctrl.a());
    let mut b = Mat::zeros(np + nc, m);
    b.set_block(0, 0, plant_d.b());
    let mut c = Mat::zeros(m, np + nc);
    c.set_block(0, np, ctrl.c());
    DiscreteSs::new(a, b, c, Mat::zeros(m, m), plant_d.period())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c2d::c2d_zoh;
    use crate::plants;
    use csa_linalg::spectral_radius;

    fn dc_servo() -> StateSpace {
        plants::dc_servo().unwrap()
    }

    #[test]
    fn sampled_cost_limits() {
        // As h -> 0, Q1d/h -> Q1c, Q2d/h -> Q2c, Q12d/h -> 0 (on a plant
        // with O(1) norms so absolute tolerances are meaningful).
        let plant = plants::first_order_lag().unwrap();
        let w = LqgWeights {
            q1: Mat::scalar(2.0),
            q2: Mat::scalar(0.5),
            r1: Mat::scalar(1.0),
            r2: Mat::scalar(1.0),
        };
        let h = 1e-5;
        let c = sample_cost(&plant, &w, h).unwrap();
        assert!(c.q1.scale(1.0 / h).max_abs_diff(&w.q1) < 1e-3);
        assert!(c.q2.scale(1.0 / h).max_abs_diff(&w.q2) < 1e-3);
        assert!(c.q12.max_abs() / h < 1e-3);
    }

    #[test]
    fn sampled_cost_quadrature_check() {
        // Against Simpson quadrature of int_0^h e^{Abar' s} Qbar e^{Abar s} ds
        // on the DC servo (large norms exercise scaling).
        let plant = dc_servo();
        let w = LqgWeights::output_regulation(&plant, 0.5, 1e-6);
        let h = 0.006;
        let c = sample_cost(&plant, &w, h).unwrap();
        let n = plant.order();
        let mut abar = Mat::zeros(n + 1, n + 1);
        abar.set_block(0, 0, plant.a());
        abar.set_block(0, n, plant.b());
        let mut qbar = Mat::zeros(n + 1, n + 1);
        qbar.set_block(0, 0, &w.q1);
        qbar.set_block(n, n, &w.q2);
        let steps = 200;
        let ds = h / steps as f64;
        let mut acc = Mat::zeros(n + 1, n + 1);
        for k in 0..=steps {
            let s = k as f64 * ds;
            let e = csa_linalg::expm(&abar.scale(s)).unwrap();
            let term = &(&e.transpose() * &qbar) * &e;
            let wgt = if k == 0 || k == steps {
                1.0
            } else if k % 2 == 1 {
                4.0
            } else {
                2.0
            };
            acc = &acc + &term.scale(wgt);
        }
        let qd = acc.scale(ds / 3.0);
        let scale = qd.max_abs();
        assert!(c.q1.max_abs_diff(&qd.block(0, 0, n, n)) < 1e-9 * scale);
        assert!(c.q12.max_abs_diff(&qd.block(0, n, n, 1)) < 1e-9 * scale);
        assert!(c.q2.max_abs_diff(&qd.block(n, n, 1, 1)) < 1e-9 * scale);
    }

    #[test]
    fn lqg_stabilizes_dc_servo() {
        let plant = dc_servo();
        let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
        for &tau in &[0.0, 0.002, 0.006, 0.009] {
            let lqg = design_lqg(&plant, &w, 0.006, tau).unwrap();
            let loop_sys = input_sensitivity_loop(&lqg.plant_d, &lqg.controller).unwrap();
            let rho = spectral_radius(loop_sys.a()).unwrap();
            assert!(rho < 1.0, "closed loop unstable at tau={tau}: rho={rho}");
        }
    }

    #[test]
    fn lqg_stabilizes_unstable_plant() {
        let plant = plants::pendulum().unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-3, 1e-6);
        let lqg = design_lqg(&plant, &w, 0.02, 0.005).unwrap();
        let loop_sys = input_sensitivity_loop(&lqg.plant_d, &lqg.controller).unwrap();
        assert!(spectral_radius(loop_sys.a()).unwrap() < 1.0);
    }

    #[test]
    fn separation_eigenvalues() {
        // The closed-loop spectrum is the union of the regulator spectrum
        // eig(A - BK) and the estimator spectrum; check the regulator part
        // is present (separation principle).
        let plant = dc_servo();
        let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
        let lqg = design_lqg(&plant, &w, 0.01, 0.0).unwrap();
        let a_reg = lqg.plant_d.a() - &(lqg.plant_d.b() * &lqg.feedback_gain);
        let reg_eigs = csa_linalg::eigenvalues(&a_reg).unwrap();
        let loop_sys = input_sensitivity_loop(&lqg.plant_d, &lqg.controller).unwrap();
        let cl_eigs = csa_linalg::eigenvalues(loop_sys.a()).unwrap();
        for re in &reg_eigs {
            let found = cl_eigs.iter().any(|ce| (*ce - *re).abs() < 1e-6);
            assert!(found, "regulator eigenvalue {re} missing from closed loop");
        }
    }

    #[test]
    fn pathological_sampling_fails() {
        // Undamped oscillator sampled at half its oscillation period loses
        // reachability: no stabilizing controller exists.
        let w0 = 10.0;
        let plant = plants::oscillator(w0, 0.0).unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-2, 1e-6);
        let h = std::f64::consts::PI / w0;
        let r = design_lqg(&plant, &w, h, 0.0);
        assert!(
            matches!(r, Err(Error::NotStabilizable)),
            "expected NotStabilizable, got {r:?}"
        );
        // A nearby non-pathological period works.
        assert!(design_lqg(&plant, &w, h * 0.8, 0.0).is_ok());
    }

    #[test]
    fn controller_is_strictly_proper() {
        let plant = dc_servo();
        let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
        let lqg = design_lqg(&plant, &w, 0.006, 0.003).unwrap();
        assert_eq!(lqg.controller.d().max_abs(), 0.0);
    }

    #[test]
    fn loop_assembly_validates() {
        let plant = dc_servo();
        let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
        let lqg = design_lqg(&plant, &w, 0.006, 0.0).unwrap();
        let other = c2d_zoh(&plant, 0.007).unwrap();
        assert!(input_sensitivity_loop(&other, &lqg.controller).is_err());
    }
}
