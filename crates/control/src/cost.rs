//! Stationary quadratic (LQG) control cost.
//!
//! Reproduces the quantity plotted in the paper's Fig. 2: the stationary
//! continuous-time quadratic cost of a plant under sampled LQG control,
//!
//! ```text
//! J = lim (1/T) E int_0^T  x'Q1c x + u'Q2c u  dt
//! ```
//!
//! computed exactly for the sampled closed loop as
//!
//! ```text
//! J = ( tr(Q_zeta * Sigma) + tr(N * R1c) ) / h
//! ```
//!
//! where `Sigma` is the stationary covariance of the closed-loop state
//! `[x; xhat]` (a discrete Lyapunov equation), `Q_zeta` the exactly
//! sampled stage cost expressed on that state, and `tr(N R1c)` the
//! intersample contribution of process noise entering between sampling
//! instants (a nested Van Loan integral).
//!
//! At *pathological sampling periods* (Kalman, Ho & Narendra) the sampled
//! pair loses reachability and no stabilizing controller exists: the cost
//! is `+infinity`, which this module returns as a value rather than an
//! error — an infinite cost is the answer Fig. 2 plots.

use crate::error::{Error, Result};
use crate::lqg::{design_lqg, LqgWeights};
use crate::ss::StateSpace;
use csa_linalg::{dlyap, nested_gramian, Mat};

/// Stationary LQG cost of `plant` sampled at period `h` (no delay).
///
/// Returns `f64::INFINITY` when no stabilizing sampled controller exists
/// (pathological period) or the closed loop fails the Lyapunov solve.
///
/// # Errors
///
/// Only structural failures (dimension mismatches, invalid parameters)
/// surface as errors; "the cost is unbounded" is an `Ok(INFINITY)`.
///
/// # Examples
///
/// ```
/// use csa_control::{lqg_cost, plants, LqgWeights};
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let plant = plants::dc_servo()?;
/// let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
/// let j_fast = lqg_cost(&plant, &w, 0.01)?;
/// assert!(j_fast.is_finite());
/// # Ok(())
/// # }
/// ```
pub fn lqg_cost(plant: &StateSpace, weights: &LqgWeights, h: f64) -> Result<f64> {
    let lqg = match design_lqg(plant, weights, h, 0.0) {
        Ok(l) => l,
        Err(Error::NotStabilizable) => return Ok(f64::INFINITY),
        Err(Error::Numerical(csa_linalg::Error::Singular)) => return Ok(f64::INFINITY),
        Err(e) => return Err(e),
    };
    let n = plant.order();
    let phi = lqg.plant_d.a().clone();
    let gamma = lqg.plant_d.b().clone();
    let k = &lqg.feedback_gain;
    let kf = &lqg.kalman_gain;
    let c = plant.c();

    // Closed loop on [x; xhat] (predictor form):
    //   x+    = Phi x - Gamma K xhat + w_d
    //   xhat+ = Kf C x + (Phi - Gamma K - Kf C) xhat + Kf v
    let gk = &gamma * k;
    let kfc = &(kf * c);
    let mut a_cl = Mat::zeros(2 * n, 2 * n);
    a_cl.set_block(0, 0, &phi);
    a_cl.set_block(0, n, &-(&gk));
    a_cl.set_block(n, 0, kfc);
    a_cl.set_block(n, n, &(&(&phi - &gk) - kfc));

    // Driving noise covariance: blkdiag(R1d, Kf R2 Kf').
    let mut w_cov = Mat::zeros(2 * n, 2 * n);
    w_cov.set_block(0, 0, &lqg.noise_d);
    w_cov.set_block(n, n, &(&(kf * &weights.r2) * &kf.transpose()));

    let sigma = match dlyap(&a_cl, &w_cov) {
        Ok(s) => s,
        Err(csa_linalg::Error::NotStable) | Err(csa_linalg::Error::NoConvergence { .. }) => {
            return Ok(f64::INFINITY)
        }
        Err(e) => return Err(e.into()),
    };

    // Stage cost on [x; xhat] with u = -K xhat:
    //   [Q1d, -Q12d K; -K'Q12d', K' Q2d K].
    let q12k = &lqg.cost_d.q12 * k;
    let mut q_z = Mat::zeros(2 * n, 2 * n);
    q_z.set_block(0, 0, &lqg.cost_d.q1);
    q_z.set_block(0, n, &-(&q12k));
    q_z.set_block(n, 0, &-(&q12k.transpose()));
    q_z.set_block(n, n, &(&(&k.transpose() * &lqg.cost_d.q2) * k));

    let sampled_part = (&q_z * &sigma).trace();

    // Intersample noise contribution: tr(N R1c) with
    // N = int_0^h int_0^s e^{A'v} Q1c e^{Av} dv ds.
    let n_mat = nested_gramian(plant.a(), &weights.q1, h)?;
    let noise_part = (&n_mat * &weights.r1).trace();

    let j = (sampled_part + noise_part) / h;
    if !j.is_finite() || j < 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(j)
}

/// Sweeps [`lqg_cost`] over a period grid; the raw data behind Fig. 2.
///
/// # Errors
///
/// Propagates structural errors from [`lqg_cost`].
pub fn cost_curve(
    plant: &StateSpace,
    weights: &LqgWeights,
    periods: &[f64],
) -> Result<Vec<(f64, f64)>> {
    periods
        .iter()
        .map(|&h| Ok((h, lqg_cost(plant, weights, h)?)))
        .collect()
}

/// Counts the strict local maxima in a cost curve: a non-zero count is the
/// non-monotonicity the paper's Fig. 2 highlights.
pub fn non_monotone_points(curve: &[(f64, f64)]) -> usize {
    curve
        .windows(3)
        .filter(|w| {
            let (a, b, c) = (w[0].1, w[1].1, w[2].1);
            a.is_finite() && b.is_finite() && c.is_finite() && b > a && b > c
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plants;

    #[test]
    fn cost_finite_and_positive_for_servo() {
        let plant = plants::dc_servo().unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
        let j = lqg_cost(&plant, &w, 0.006).unwrap();
        assert!(j.is_finite() && j > 0.0, "J = {j}");
    }

    #[test]
    fn general_increasing_trend() {
        // The paper's headline trend: longer periods => larger cost,
        // compared far apart so local non-monotonicity cannot interfere.
        let plant = plants::dc_servo().unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
        let j_fast = lqg_cost(&plant, &w, 0.002).unwrap();
        let j_slow = lqg_cost(&plant, &w, 0.05).unwrap();
        assert!(
            j_slow > j_fast,
            "expected increasing trend: J(0.002)={j_fast}, J(0.05)={j_slow}"
        );
    }

    #[test]
    fn pathological_period_is_infinite() {
        // Undamped oscillator at h = pi/w0: unreachable oscillation mode
        // with persistent noise => infinite cost.
        let w0 = 10.0;
        let plant = plants::oscillator(w0, 0.0).unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-2, 1e-6);
        let h_path = std::f64::consts::PI / w0;
        let j = lqg_cost(&plant, &w, h_path).unwrap();
        assert!(j.is_infinite(), "expected infinite cost, got {j}");
        let j_ok = lqg_cost(&plant, &w, h_path * 0.8).unwrap();
        assert!(j_ok.is_finite());
    }

    #[test]
    fn lightly_damped_oscillator_spikes_near_pathological_periods() {
        // With small damping the cost stays finite but spikes near
        // h = k pi / wd — the structure of Fig. 2.
        let plant = plants::lightly_damped_oscillator().unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-2, 1e-6);
        let wd = 10.0 * (1.0f64 - 0.001f64 * 0.001).sqrt();
        let h_spike = std::f64::consts::PI / wd;
        let j_spike = lqg_cost(&plant, &w, h_spike).unwrap();
        let j_before = lqg_cost(&plant, &w, h_spike * 0.6).unwrap();
        assert!(
            j_spike > 10.0 * j_before,
            "no spike: J(spike)={j_spike}, J(before)={j_before}"
        );
    }

    #[test]
    fn curve_detects_non_monotonicity() {
        let plant = plants::lightly_damped_oscillator().unwrap();
        let w = LqgWeights::output_regulation(&plant, 1e-2, 1e-6);
        let periods: Vec<f64> = (1..=120).map(|k| 0.01 + k as f64 * 0.008).collect();
        let curve = cost_curve(&plant, &w, &periods).unwrap();
        assert!(
            non_monotone_points(&curve) > 0,
            "expected at least one local maximum in the cost curve"
        );
    }

    #[test]
    fn monte_carlo_validates_cost() {
        // Simulate the sampled closed loop driven by white noise and
        // compare the empirical stage cost to the analytical value.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let plant = plants::first_order_lag().unwrap();
        let w = LqgWeights::output_regulation(&plant, 0.1, 1e-2);
        let h = 0.05;
        let j_analytic = lqg_cost(&plant, &w, h).unwrap();

        let lqg = design_lqg(&plant, &w, h, 0.0).unwrap();
        let phi = lqg.plant_d.a().clone();
        let gamma = lqg.plant_d.b().clone();
        let k = lqg.feedback_gain.clone();
        let kf = lqg.kalman_gain.clone();
        let c = plant.c().clone();

        // Scalar plant: exact noise distribution is Gaussian with
        // variance r1d; Box-Muller sampling.
        let r1d = lqg.noise_d[(0, 0)];
        let r2 = w.r2[(0, 0)];
        let mut rng = StdRng::seed_from_u64(2017);
        let normal = move |rng: &mut StdRng| -> f64 {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };

        let steps = 400_000usize;
        let burn = 2_000usize;
        let mut x = 0.0f64;
        let mut xh = 0.0f64;
        let mut acc = 0.0f64;
        let q1 = lqg.cost_d.q1[(0, 0)];
        let q12 = lqg.cost_d.q12[(0, 0)];
        let q2 = lqg.cost_d.q2[(0, 0)];
        for step in 0..steps {
            let u = -k[(0, 0)] * xh;
            if step >= burn {
                acc += q1 * x * x + 2.0 * q12 * x * u + q2 * u * u;
            }
            let wn = normal(&mut rng) * r1d.sqrt();
            let vn = normal(&mut rng) * r2.sqrt();
            let y = c[(0, 0)] * x + vn;
            let innov = y - c[(0, 0)] * xh;
            let x_next = phi[(0, 0)] * x + gamma[(0, 0)] * u + wn;
            let xh_next = phi[(0, 0)] * xh + gamma[(0, 0)] * u + kf[(0, 0)] * innov;
            x = x_next;
            xh = xh_next;
        }
        let sampled_mc = acc / (steps - burn) as f64 / h;
        // Add the analytical intersample term (not visible to a sampled
        // simulation).
        let n_mat = nested_gramian(plant.a(), &w.q1, h).unwrap();
        let j_mc = sampled_mc + (&n_mat * &w.r1).trace() / h;
        let rel = (j_mc - j_analytic).abs() / j_analytic;
        assert!(
            rel < 0.05,
            "Monte Carlo {j_mc} vs analytic {j_analytic} (rel {rel})"
        );
    }
}
