//! Control-theoretic substrate of the DATE 2017 anomalies reproduction.
//!
//! Everything the paper needs from control theory, hand-written on top of
//! `csa-linalg` (the reproduction bands forbid control toolboxes); the
//! plant pool, jitter-margin criterion, and LQG modelling commitments
//! are documented in DESIGN.md §3:
//!
//! * LTI models: [`StateSpace`], [`TransferFunction`], [`DiscreteSs`];
//! * sampling: [`c2d_zoh`] and [`c2d_zoh_delayed`] (arbitrary input delay
//!   via state augmentation, Åström & Wittenmark §3.2);
//! * sampled LQG synthesis: [`LqgWeights`], [`sample_cost`],
//!   [`design_lqg`] (exact Van Loan cost/noise sampling, DARE gains,
//!   stationary Kalman predictor);
//! * the stationary quadratic cost of Fig. 2: [`lqg_cost`], [`cost_curve`]
//!   (infinite at pathological sampling periods);
//! * the jitter-margin analysis of Fig. 4: [`jitter_margin`],
//!   [`stability_curve`], [`delay_margin`], and the paper's Eq. 5 linear
//!   bound [`StabilityFit`];
//! * the batched, warm-started kernel pipeline (DESIGN.md §10):
//!   [`MarginScratch`], [`KernelMode`], [`StabilityCurveBatch`],
//!   [`LqgDesigner`], the bit-frozen [`jitter_margin_exact`] /
//!   [`stability_curve_exact`] entry points, and the retained
//!   [`mod@reference`] implementations they are pinned against;
//! * the benchmark plant pool of §V: [`plants`].
//!
//! # Example: the paper's Fig. 4 in five lines
//!
//! ```
//! use csa_control::{design_lqg, plants, stability_curve, LqgWeights, StabilityFit};
//!
//! # fn main() -> Result<(), csa_control::Error> {
//! let plant = plants::dc_servo()?;
//! let weights = LqgWeights::output_regulation(&plant, 1e-4, 1e-6);
//! let lqg = design_lqg(&plant, &weights, 0.006, 0.0)?;
//! let curve = stability_curve(&plant, &lqg.controller, 0.006, 12)?;
//! let fit = StabilityFit::from_curve(&curve);
//! assert!(fit.a >= 1.0 && fit.b > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod c2d;
mod cost;
mod error;
mod freq;
mod lqg;
mod margin;
pub mod plants;
pub mod reference;
mod response;
mod ss;

pub use c2d::{c2d_zoh, c2d_zoh_delayed};
pub use cost::{cost_curve, lqg_cost, non_monotone_points};
pub use error::{Error, Result};
pub use freq::{continuous_response, discrete_response};
pub use lqg::{
    design_lqg, input_sensitivity_loop, sample_cost, LqgController, LqgDesigner, LqgWeights,
    SampledCost,
};
pub use margin::{
    delay_margin, jitter_margin, jitter_margin_exact, stability_curve, stability_curve_exact,
    CurvePoint, KernelMode, MarginScratch, StabilityCurve, StabilityCurveBatch, StabilityFit,
};
pub use response::{disturbance_impulse_response, simulate, step_response, tail_peak};
pub use ss::{DiscreteSs, StateSpace, TransferFunction};
