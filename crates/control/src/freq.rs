//! Frequency responses of continuous and discrete systems.

use crate::error::Result;
use crate::ss::{DiscreteSs, StateSpace};
use csa_linalg::{CMat, Cplx};

/// Evaluates `G(s) = C (sI - A)^{-1} B + D` of a continuous system at
/// `s = j*omega`.
///
/// Returns the full (outputs x inputs) complex response matrix.
///
/// # Errors
///
/// [`csa_linalg::Error::Singular`] (wrapped) if `j*omega` is an eigenvalue
/// of `A` (a pole on the imaginary axis).
///
/// # Examples
///
/// ```
/// use csa_control::{continuous_response, TransferFunction};
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let sys = TransferFunction::new(vec![1.0], vec![1.0, 1.0])?.to_state_space()?;
/// let g = continuous_response(&sys, 1.0)?; // |1/(1+j)| = 1/sqrt(2)
/// assert!((g[(0, 0)].abs() - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn continuous_response(sys: &StateSpace, omega: f64) -> Result<CMat> {
    response_at(sys.a(), sys.b(), sys.c(), sys.d(), Cplx::new(0.0, omega))
}

/// Evaluates `G(z) = C (zI - A)^{-1} B + D` of a discrete system at
/// `z = e^{j omega h}` where `h` is the system's sampling period.
///
/// # Errors
///
/// [`csa_linalg::Error::Singular`] (wrapped) if `z` is an eigenvalue of
/// `A` (a pole on the unit circle at this frequency).
///
/// # Examples
///
/// ```
/// use csa_control::{c2d_zoh, discrete_response, TransferFunction};
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let sys = TransferFunction::new(vec![1.0], vec![1.0, 1.0])?.to_state_space()?;
/// let d = c2d_zoh(&sys, 0.01)?;
/// // At low frequency the discrete response approaches the DC gain 1.
/// let g = discrete_response(&d, 0.01)?;
/// assert!((g[(0, 0)].abs() - 1.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn discrete_response(sys: &DiscreteSs, omega: f64) -> Result<CMat> {
    let z = Cplx::from_angle(omega * sys.period());
    response_at(sys.a(), sys.b(), sys.c(), sys.d(), z)
}

/// Evaluates `C (pI - A)^{-1} B + D` at an arbitrary complex point `p`.
pub(crate) fn response_at(
    a: &csa_linalg::Mat,
    b: &csa_linalg::Mat,
    c: &csa_linalg::Mat,
    d: &csa_linalg::Mat,
    p: Cplx,
) -> Result<CMat> {
    let n = a.rows();
    let pi = &CMat::identity(n) * p;
    let m = &pi - &CMat::from_real(a);
    let x = m.solve(&CMat::from_real(b))?;
    let g = &CMat::from_real(c) * &x;
    Ok(&g + &CMat::from_real(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c2d::c2d_zoh;
    use crate::ss::TransferFunction;

    #[test]
    fn first_order_lag_magnitude_and_phase() {
        let sys = TransferFunction::new(vec![2.0], vec![1.0, 1.0])
            .unwrap()
            .to_state_space()
            .unwrap();
        // G(jw) = 2/(1+jw).
        for &w in &[0.0, 0.5, 1.0, 10.0] {
            let g = continuous_response(&sys, w).unwrap()[(0, 0)];
            let expect = Cplx::from_re(2.0) / Cplx::new(1.0, w);
            assert!((g - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn discrete_response_of_known_system() {
        // x+ = 0.5 x + u, y = x: G(z) = 1/(z - 0.5).
        let d = DiscreteSs::new(
            csa_linalg::Mat::scalar(0.5),
            csa_linalg::Mat::scalar(1.0),
            csa_linalg::Mat::scalar(1.0),
            csa_linalg::Mat::scalar(0.0),
            1.0,
        )
        .unwrap();
        for &w in &[0.1, 1.0, 3.0] {
            let z = Cplx::from_angle(w);
            let g = discrete_response(&d, w).unwrap()[(0, 0)];
            let expect = Cplx::ONE / (z - Cplx::from_re(0.5));
            assert!((g - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn zoh_response_matches_formula() {
        // ZOH of 1/(s+1) at h: G(z) = (1-e^{-h})/(z - e^{-h}).
        let sys = TransferFunction::new(vec![1.0], vec![1.0, 1.0])
            .unwrap()
            .to_state_space()
            .unwrap();
        let h = 0.2;
        let d = c2d_zoh(&sys, h).unwrap();
        let a = (-h).exp();
        for &w in &[0.3, 2.0, std::f64::consts::PI / h] {
            let z = Cplx::from_angle(w * h);
            let g = discrete_response(&d, w).unwrap()[(0, 0)];
            let expect = Cplx::from_re(1.0 - a) / (z - Cplx::from_re(a));
            assert!((g - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn pole_on_axis_is_singular() {
        // Integrator: response at w = 0 does not exist.
        let sys = TransferFunction::new(vec![1.0], vec![1.0, 0.0])
            .unwrap()
            .to_state_space()
            .unwrap();
        assert!(continuous_response(&sys, 0.0).is_err());
        assert!(continuous_response(&sys, 1.0).is_ok());
    }
}
