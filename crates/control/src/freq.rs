//! Frequency responses of continuous and discrete systems.
//!
//! Besides the one-shot [`continuous_response`]/[`discrete_response`]
//! entry points, this module provides the two kernel classes of the
//! batched jitter-margin pipeline (DESIGN.md §10):
//!
//! * [`ResponseScratch`] — a re-entrant buffer reuse of the dense
//!   `O(n^3)` solve, bit-identical to [`response_at`];
//! * [`HessSiso`] — a reduced-once Hessenberg evaluator answering SISO
//!   sweeps in `O(n^2)` per point, accurate to orthogonal-similarity
//!   round-off but *not* bit-identical.

use crate::error::{Error, Result};
use crate::ss::{DiscreteSs, StateSpace};
use csa_linalg::{hessenberg_with_q, CMat, Cplx, Mat};

/// Evaluates `G(s) = C (sI - A)^{-1} B + D` of a continuous system at
/// `s = j*omega`.
///
/// Returns the full (outputs x inputs) complex response matrix.
///
/// # Errors
///
/// [`csa_linalg::Error::Singular`] (wrapped) if `j*omega` is an eigenvalue
/// of `A` (a pole on the imaginary axis).
///
/// # Examples
///
/// ```
/// use csa_control::{continuous_response, TransferFunction};
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let sys = TransferFunction::new(vec![1.0], vec![1.0, 1.0])?.to_state_space()?;
/// let g = continuous_response(&sys, 1.0)?; // |1/(1+j)| = 1/sqrt(2)
/// assert!((g[(0, 0)].abs() - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn continuous_response(sys: &StateSpace, omega: f64) -> Result<CMat> {
    response_at(sys.a(), sys.b(), sys.c(), sys.d(), Cplx::new(0.0, omega))
}

/// Evaluates `G(z) = C (zI - A)^{-1} B + D` of a discrete system at
/// `z = e^{j omega h}` where `h` is the system's sampling period.
///
/// # Errors
///
/// [`csa_linalg::Error::Singular`] (wrapped) if `z` is an eigenvalue of
/// `A` (a pole on the unit circle at this frequency).
///
/// # Examples
///
/// ```
/// use csa_control::{c2d_zoh, discrete_response, TransferFunction};
///
/// # fn main() -> Result<(), csa_control::Error> {
/// let sys = TransferFunction::new(vec![1.0], vec![1.0, 1.0])?.to_state_space()?;
/// let d = c2d_zoh(&sys, 0.01)?;
/// // At low frequency the discrete response approaches the DC gain 1.
/// let g = discrete_response(&d, 0.01)?;
/// assert!((g[(0, 0)].abs() - 1.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn discrete_response(sys: &DiscreteSs, omega: f64) -> Result<CMat> {
    let z = Cplx::from_angle(omega * sys.period());
    response_at(sys.a(), sys.b(), sys.c(), sys.d(), z)
}

/// Evaluates `C (pI - A)^{-1} B + D` at an arbitrary complex point `p`.
pub(crate) fn response_at(
    a: &csa_linalg::Mat,
    b: &csa_linalg::Mat,
    c: &csa_linalg::Mat,
    d: &csa_linalg::Mat,
    p: Cplx,
) -> Result<CMat> {
    let n = a.rows();
    let pi = &CMat::identity(n) * p;
    let m = &pi - &CMat::from_real(a);
    let x = m.solve(&CMat::from_real(b))?;
    let g = &CMat::from_real(c) * &x;
    Ok(&g + &CMat::from_real(d))
}

/// Re-entrant workspace for repeated dense frequency-response solves.
///
/// [`ResponseScratch::response_at_in`] performs the identical
/// floating-point operation sequence as [`response_at`] — build `pI - A`,
/// LU-eliminate against `B` with the same pivoting and zero-skips as
/// [`CMat::solve`], multiply by `C`, add `D` — so results are
/// bit-identical; only the intermediate allocations are replaced by
/// reused buffers.
#[derive(Debug, Clone)]
pub(crate) struct ResponseScratch {
    m: CMat,
    x: CMat,
    g: CMat,
}

impl ResponseScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused.
    pub(crate) fn new() -> Self {
        ResponseScratch {
            m: CMat::zeros(1, 1),
            x: CMat::zeros(1, 1),
            g: CMat::zeros(1, 1),
        }
    }

    /// Evaluates `C (pI - A)^{-1} B + D` into an internal buffer;
    /// bit-identical mirror of [`response_at`].
    pub(crate) fn response_at_in(
        &mut self,
        a: &Mat,
        b: &Mat,
        c: &Mat,
        d: &Mat,
        p: Cplx,
    ) -> Result<&CMat> {
        let n = a.rows();
        let nrhs = b.cols();
        // m = (I * p) - from_real(A), replicated element-by-element so even
        // the ±0.0 signs match the matrix-level expression of
        // `response_at` exactly.
        self.m.reset(n, n);
        for i in 0..n {
            for j in 0..n {
                let idc = if i == j { Cplx::ONE } else { Cplx::ZERO };
                self.m[(i, j)] = idc * p - Cplx::from_re(a[(i, j)]);
            }
        }
        self.x.copy_from_real(b);
        // In-place mirror of `CMat::solve` on (m, x): same row-major scale
        // fold, pivoting rule, and zero-skips.
        let scale = {
            let mut s = 0.0f64;
            for i in 0..n {
                for j in 0..n {
                    s = s.max(self.m[(i, j)].abs());
                }
            }
            s.max(1.0)
        };
        let tol = scale * f64::EPSILON * (n as f64);
        for k in 0..n {
            let mut piv = k;
            let mut best = self.m[(k, k)].abs();
            for i in (k + 1)..n {
                let v = self.m[(i, k)].abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            if best <= tol {
                return Err(Error::Numerical(csa_linalg::Error::Singular));
            }
            if piv != k {
                for j in 0..n {
                    let t = self.m[(k, j)];
                    self.m[(k, j)] = self.m[(piv, j)];
                    self.m[(piv, j)] = t;
                }
                for j in 0..nrhs {
                    let t = self.x[(k, j)];
                    self.x[(k, j)] = self.x[(piv, j)];
                    self.x[(piv, j)] = t;
                }
            }
            let pivot = self.m[(k, k)];
            for i in (k + 1)..n {
                let f = self.m[(i, k)] / pivot;
                self.m[(i, k)] = f;
                if f != Cplx::ZERO {
                    for j in (k + 1)..n {
                        let v = f * self.m[(k, j)];
                        self.m[(i, j)] -= v;
                    }
                    for j in 0..nrhs {
                        let v = f * self.x[(k, j)];
                        self.x[(i, j)] -= v;
                    }
                }
            }
        }
        for k in (0..n).rev() {
            let dkk = self.m[(k, k)];
            for j in 0..nrhs {
                self.x[(k, j)] = self.x[(k, j)] / dkk;
            }
            for i in 0..k {
                let u = self.m[(i, k)];
                if u != Cplx::ZERO {
                    for j in 0..nrhs {
                        let v = u * self.x[(k, j)];
                        self.x[(i, j)] -= v;
                    }
                }
            }
        }
        // g = from_real(C) * x + from_real(D), with the product's zero-skip.
        let rows = c.rows();
        self.g.reset(rows, nrhs);
        for i in 0..rows {
            for k in 0..c.cols() {
                let aik = Cplx::from_re(c[(i, k)]);
                if aik == Cplx::ZERO {
                    continue;
                }
                for j in 0..nrhs {
                    let v = aik * self.x[(k, j)];
                    self.g[(i, j)] += v;
                }
            }
        }
        for i in 0..rows {
            for j in 0..nrhs {
                self.g[(i, j)] += Cplx::from_re(d[(i, j)]);
            }
        }
        Ok(&self.g)
    }
}

/// Reduced-once fast SISO frequency evaluator (the *fast* kernel class of
/// DESIGN.md §10).
///
/// [`HessSiso::build`] factors the state matrix once per system into
/// Hessenberg form `A = Q H Q^T` ([`hessenberg_with_q`]) and rotates
/// `B`/`C` into the Hessenberg basis; [`HessSiso::eval`] then computes
/// `G(z) = C (zI - A)^{-1} B + D` in `O(n^2)` per point via a banded
/// elimination with adjacent-row pivoting, instead of the `O(n^3)` dense
/// solve of [`response_at`].
///
/// Tolerance contract: the orthogonal change of basis commutes with the
/// resolvent exactly in real arithmetic, so results agree with the exact
/// path to round-off (relative error ~1e-13 on well-conditioned sweeps),
/// but are *not* bit-identical.
#[derive(Debug, Clone)]
pub(crate) struct HessSiso {
    n: usize,
    h: Mat,
    bt: Mat,
    ct: Mat,
    d0: f64,
    mh: Vec<Cplx>,
    y: Vec<Cplx>,
}

impl HessSiso {
    /// Creates an empty evaluator; [`HessSiso::build`] must run before
    /// [`HessSiso::eval`].
    pub(crate) fn new() -> Self {
        HessSiso {
            n: 0,
            h: Mat::zeros(1, 1),
            bt: Mat::zeros(1, 1),
            ct: Mat::zeros(1, 1),
            d0: 0.0,
            mh: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Reduces a SISO system to Hessenberg form for fast sweeps.
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedModel`] if the system is not SISO.
    pub(crate) fn build(&mut self, sys: &DiscreteSs) -> Result<()> {
        if sys.inputs() != 1 || sys.outputs() != 1 {
            return Err(Error::UnsupportedModel(
                "fast margin kernel requires a SISO loop",
            ));
        }
        let (h, q) = hessenberg_with_q(sys.a());
        self.n = h.rows();
        self.bt = &q.transpose() * sys.b();
        self.ct = sys.c() * &q;
        self.h = h;
        self.d0 = sys.d()[(0, 0)];
        Ok(())
    }

    /// Evaluates `G(z)` of the system last passed to [`HessSiso::build`].
    ///
    /// # Errors
    ///
    /// [`Error::Numerical`] ([`csa_linalg::Error::Singular`]) when `z` is
    /// an eigenvalue of the state matrix.
    ///
    /// # Panics
    ///
    /// Panics if [`HessSiso::build`] has not been called.
    pub(crate) fn eval(&mut self, z: Cplx) -> Result<Cplx> {
        let n = self.n;
        assert!(n > 0, "HessSiso::build must run before eval");
        self.mh.clear();
        self.mh.resize(n * n, Cplx::ZERO);
        self.y.clear();
        self.y
            .extend((0..n).map(|i| Cplx::from_re(self.bt[(i, 0)])));
        // Fill zI - H on the Hessenberg band; entries below the first
        // subdiagonal are exactly zero and never touched.
        let mut scale = 0.0f64;
        for i in 0..n {
            for j in i.saturating_sub(1)..n {
                let idc = if i == j { z } else { Cplx::ZERO };
                let v = idc - Cplx::from_re(self.h[(i, j)]);
                self.mh[i * n + j] = v;
                scale = scale.max(v.abs());
            }
        }
        let tol = scale.max(1.0) * f64::EPSILON * (n as f64);
        // Gaussian elimination with adjacent-row pivoting: column k has a
        // single sub-diagonal entry (row k+1), so one comparison and one
        // row update suffice — O(n) per column, O(n^2) total.
        for k in 0..n.saturating_sub(1) {
            if self.mh[(k + 1) * n + k].abs() > self.mh[k * n + k].abs() {
                for j in k..n {
                    self.mh.swap(k * n + j, (k + 1) * n + j);
                }
                self.y.swap(k, k + 1);
            }
            let pivot = self.mh[k * n + k];
            if pivot.abs() <= tol {
                return Err(Error::Numerical(csa_linalg::Error::Singular));
            }
            let f = self.mh[(k + 1) * n + k] / pivot;
            if f != Cplx::ZERO {
                for j in (k + 1)..n {
                    let v = f * self.mh[k * n + j];
                    self.mh[(k + 1) * n + j] -= v;
                }
                let v = f * self.y[k];
                self.y[k + 1] -= v;
            }
        }
        if self.mh[(n - 1) * n + (n - 1)].abs() <= tol {
            return Err(Error::Numerical(csa_linalg::Error::Singular));
        }
        for k in (0..n).rev() {
            let mut acc = self.y[k];
            for j in (k + 1)..n {
                let u = self.mh[k * n + j];
                if u != Cplx::ZERO {
                    acc -= u * self.y[j];
                }
            }
            self.y[k] = acc / self.mh[k * n + k];
        }
        let mut g = Cplx::from_re(self.d0);
        for j in 0..n {
            let cj = Cplx::from_re(self.ct[(0, j)]);
            if cj != Cplx::ZERO {
                g += cj * self.y[j];
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c2d::c2d_zoh;
    use crate::ss::TransferFunction;

    #[test]
    fn first_order_lag_magnitude_and_phase() {
        let sys = TransferFunction::new(vec![2.0], vec![1.0, 1.0])
            .unwrap()
            .to_state_space()
            .unwrap();
        // G(jw) = 2/(1+jw).
        for &w in &[0.0, 0.5, 1.0, 10.0] {
            let g = continuous_response(&sys, w).unwrap()[(0, 0)];
            let expect = Cplx::from_re(2.0) / Cplx::new(1.0, w);
            assert!((g - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn discrete_response_of_known_system() {
        // x+ = 0.5 x + u, y = x: G(z) = 1/(z - 0.5).
        let d = DiscreteSs::new(
            csa_linalg::Mat::scalar(0.5),
            csa_linalg::Mat::scalar(1.0),
            csa_linalg::Mat::scalar(1.0),
            csa_linalg::Mat::scalar(0.0),
            1.0,
        )
        .unwrap();
        for &w in &[0.1, 1.0, 3.0] {
            let z = Cplx::from_angle(w);
            let g = discrete_response(&d, w).unwrap()[(0, 0)];
            let expect = Cplx::ONE / (z - Cplx::from_re(0.5));
            assert!((g - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn zoh_response_matches_formula() {
        // ZOH of 1/(s+1) at h: G(z) = (1-e^{-h})/(z - e^{-h}).
        let sys = TransferFunction::new(vec![1.0], vec![1.0, 1.0])
            .unwrap()
            .to_state_space()
            .unwrap();
        let h = 0.2;
        let d = c2d_zoh(&sys, h).unwrap();
        let a = (-h).exp();
        for &w in &[0.3, 2.0, std::f64::consts::PI / h] {
            let z = Cplx::from_angle(w * h);
            let g = discrete_response(&d, w).unwrap()[(0, 0)];
            let expect = Cplx::from_re(1.0 - a) / (z - Cplx::from_re(a));
            assert!((g - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn response_scratch_bit_identical_to_one_shot() {
        let a =
            csa_linalg::Mat::from_rows(&[&[0.2, 1.0, 0.0], &[-0.3, 0.5, 0.2], &[0.0, -0.1, 0.7]]);
        let b = csa_linalg::Mat::col_vec(&[1.0, 0.5, -0.2]);
        let c = csa_linalg::Mat::from_rows(&[&[1.0, 0.0, 2.0]]);
        let d = csa_linalg::Mat::zeros(1, 1);
        let mut scratch = ResponseScratch::new();
        for &w in &[0.1, 0.9, 2.4, 3.1] {
            let z = Cplx::from_angle(w);
            let reference = response_at(&a, &b, &c, &d, z).unwrap();
            let got = scratch.response_at_in(&a, &b, &c, &d, z).unwrap();
            assert_eq!(got[(0, 0)].re.to_bits(), reference[(0, 0)].re.to_bits());
            assert_eq!(got[(0, 0)].im.to_bits(), reference[(0, 0)].im.to_bits());
        }
    }

    #[test]
    fn hess_siso_matches_dense_to_roundoff() {
        let a = csa_linalg::Mat::from_rows(&[
            &[0.6, 0.3, -0.1, 0.0],
            &[-0.2, 0.4, 0.2, 0.1],
            &[0.1, -0.3, 0.5, 0.2],
            &[0.0, 0.1, -0.2, 0.3],
        ]);
        let b = csa_linalg::Mat::col_vec(&[1.0, 0.0, -0.5, 0.2]);
        let c = csa_linalg::Mat::from_rows(&[&[0.5, 1.0, 0.0, -1.0]]);
        let d = csa_linalg::Mat::scalar(0.1);
        let sys = DiscreteSs::new(a.clone(), b.clone(), c.clone(), d.clone(), 0.01).unwrap();
        let mut hess = HessSiso::new();
        hess.build(&sys).unwrap();
        for i in 0..40 {
            let z = Cplx::from_angle(0.07 * (i as f64 + 1.0));
            let dense = response_at(&a, &b, &c, &d, z).unwrap()[(0, 0)];
            let fast = hess.eval(z).unwrap();
            assert!(
                (fast - dense).abs() <= 1e-12 * dense.abs().max(1.0),
                "fast/dense drift at z={z:?}: {fast:?} vs {dense:?}"
            );
        }
    }

    #[test]
    fn hess_siso_rejects_mimo() {
        let a = csa_linalg::Mat::scalar(0.5);
        let b = csa_linalg::Mat::from_rows(&[&[1.0, 2.0]]);
        let c = csa_linalg::Mat::scalar(1.0);
        let d = csa_linalg::Mat::from_rows(&[&[0.0, 0.0]]);
        let sys = DiscreteSs::new(a, b, c, d, 1.0).unwrap();
        assert!(HessSiso::new().build(&sys).is_err());
    }

    #[test]
    fn pole_on_axis_is_singular() {
        // Integrator: response at w = 0 does not exist.
        let sys = TransferFunction::new(vec![1.0], vec![1.0, 0.0])
            .unwrap()
            .to_state_space()
            .unwrap();
        assert!(continuous_response(&sys, 0.0).is_err());
        assert!(continuous_response(&sys, 1.0).is_ok());
    }
}
