//! Linear time-invariant system representations.
//!
//! Continuous-time plants are the paper's Eq. 1 (`x' = A x + B u`); the
//! discrete-time form carries its sampling period so downstream code can
//! never mix discretizations at different rates by accident.

use crate::error::{Error, Result};
use csa_linalg::Mat;

/// A continuous-time LTI system `x' = A x + B u`, `y = C x + D u`.
///
/// # Examples
///
/// ```
/// use csa_control::StateSpace;
/// use csa_linalg::Mat;
///
/// # fn main() -> Result<(), csa_control::Error> {
/// // Double integrator.
/// let sys = StateSpace::new(
///     Mat::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]),
///     Mat::col_vec(&[0.0, 1.0]),
///     Mat::row_vec(&[1.0, 0.0]),
///     Mat::scalar(0.0),
/// )?;
/// assert_eq!(sys.order(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpace {
    a: Mat,
    b: Mat,
    c: Mat,
    d: Mat,
}

impl StateSpace {
    /// Creates a system, validating dimensional consistency.
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedModel`] if the dimensions are inconsistent.
    pub fn new(a: Mat, b: Mat, c: Mat, d: Mat) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::UnsupportedModel("A must be square"));
        }
        if b.rows() != a.rows() {
            return Err(Error::UnsupportedModel("B must have as many rows as A"));
        }
        if c.cols() != a.cols() {
            return Err(Error::UnsupportedModel("C must have as many columns as A"));
        }
        if d.rows() != c.rows() || d.cols() != b.cols() {
            return Err(Error::UnsupportedModel("D must be (outputs x inputs)"));
        }
        Ok(StateSpace { a, b, c, d })
    }

    /// State matrix `A`.
    pub fn a(&self) -> &Mat {
        &self.a
    }

    /// Input matrix `B`.
    pub fn b(&self) -> &Mat {
        &self.b
    }

    /// Output matrix `C`.
    pub fn c(&self) -> &Mat {
        &self.c
    }

    /// Feedthrough matrix `D`.
    pub fn d(&self) -> &Mat {
        &self.d
    }

    /// Number of states.
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.c.rows()
    }
}

/// A discrete-time LTI system `x+ = A x + B u`, `y = C x + D u`, tagged
/// with its sampling period in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteSs {
    a: Mat,
    b: Mat,
    c: Mat,
    d: Mat,
    period: f64,
}

impl DiscreteSs {
    /// Creates a discrete system, validating dimensional consistency.
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedModel`] on inconsistent dimensions,
    /// [`Error::InvalidParameter`] for a non-positive period.
    pub fn new(a: Mat, b: Mat, c: Mat, d: Mat, period: f64) -> Result<Self> {
        if !(period.is_finite() && period > 0.0) {
            return Err(Error::InvalidParameter("sampling period must be positive"));
        }
        let ss = StateSpace::new(a, b, c, d)?;
        Ok(DiscreteSs {
            a: ss.a,
            b: ss.b,
            c: ss.c,
            d: ss.d,
            period,
        })
    }

    /// State matrix `A`.
    pub fn a(&self) -> &Mat {
        &self.a
    }

    /// Input matrix `B`.
    pub fn b(&self) -> &Mat {
        &self.b
    }

    /// Output matrix `C`.
    pub fn c(&self) -> &Mat {
        &self.c
    }

    /// Feedthrough matrix `D`.
    pub fn d(&self) -> &Mat {
        &self.d
    }

    /// Sampling period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Number of states.
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.c.rows()
    }

    /// Returns `true` if the autonomous system is Schur stable.
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue-solver failures.
    pub fn is_stable(&self) -> Result<bool> {
        Ok(csa_linalg::is_schur_stable(&self.a)?)
    }
}

/// A single-input single-output transfer function
/// `G(s) = num(s) / den(s)` with coefficients in descending powers of `s`.
///
/// # Examples
///
/// ```
/// use csa_control::TransferFunction;
///
/// # fn main() -> Result<(), csa_control::Error> {
/// // The paper's DC servo: 1000 / (s^2 + s).
/// let g = TransferFunction::new(vec![1000.0], vec![1.0, 1.0, 0.0])?;
/// let ss = g.to_state_space()?;
/// assert_eq!(ss.order(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransferFunction {
    num: Vec<f64>,
    den: Vec<f64>,
}

impl TransferFunction {
    /// Creates a transfer function. The denominator's leading coefficient
    /// must be non-zero; the numerator degree must not exceed the
    /// denominator degree (proper system).
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedModel`] on an empty/zero denominator or an
    /// improper ratio.
    pub fn new(num: Vec<f64>, den: Vec<f64>) -> Result<Self> {
        let num = trim_leading_zeros(num);
        let den = trim_leading_zeros(den);
        if den.is_empty() {
            return Err(Error::UnsupportedModel("denominator must be non-zero"));
        }
        if num.len() > den.len() {
            return Err(Error::UnsupportedModel(
                "transfer function must be proper (deg num <= deg den)",
            ));
        }
        if num.is_empty() {
            return Err(Error::UnsupportedModel("numerator must be non-zero"));
        }
        Ok(TransferFunction { num, den })
    }

    /// Numerator coefficients (descending powers, normalized so the
    /// denominator is monic).
    pub fn num(&self) -> &[f64] {
        &self.num
    }

    /// Denominator coefficients (descending powers).
    pub fn den(&self) -> &[f64] {
        &self.den
    }

    /// Evaluates `G` at a complex point `s`.
    pub fn evaluate(&self, s: csa_linalg::Cplx) -> csa_linalg::Cplx {
        poly_eval(&self.num, s) / poly_eval(&self.den, s)
    }

    /// Converts to controllable canonical state-space form.
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedModel`] only on internal inconsistencies (the
    /// constructor already validated properness).
    pub fn to_state_space(&self) -> Result<StateSpace> {
        let lead = self.den[0];
        let den: Vec<f64> = self.den.iter().map(|c| c / lead).collect();
        let n = den.len() - 1;
        if n == 0 {
            // Pure gain.
            let g = self.num[0] / lead;
            return StateSpace::new(
                Mat::zeros(1, 1),
                Mat::zeros(1, 1),
                Mat::zeros(1, 1),
                Mat::scalar(g),
            );
        }
        // Pad numerator to length n+1 (same degree as denominator).
        let mut num = vec![0.0; n + 1 - self.num.len()];
        num.extend(self.num.iter().map(|c| c / lead));
        let d0 = num[0]; // feedthrough when deg num == deg den

        // Controllable canonical form:
        // A = [ -a1 -a2 ... -an; 1 0 ...; 0 1 0 ...; ... ], B = e1,
        // C row: b_i - a_i * d0.
        let mut a = Mat::zeros(n, n);
        for j in 0..n {
            a[(0, j)] = -den[j + 1];
        }
        for i in 1..n {
            a[(i, i - 1)] = 1.0;
        }
        let mut b = Mat::zeros(n, 1);
        b[(0, 0)] = 1.0;
        let mut c = Mat::zeros(1, n);
        for j in 0..n {
            c[(0, j)] = num[j + 1] - den[j + 1] * d0;
        }
        StateSpace::new(a, b, c, Mat::scalar(d0))
    }
}

/// Evaluates a polynomial with descending-power coefficients at `s`.
fn poly_eval(coeffs: &[f64], s: csa_linalg::Cplx) -> csa_linalg::Cplx {
    let mut acc = csa_linalg::Cplx::ZERO;
    for &c in coeffs {
        acc = acc * s + csa_linalg::Cplx::from_re(c);
    }
    acc
}

fn trim_leading_zeros(mut v: Vec<f64>) -> Vec<f64> {
    let first_nonzero = v.iter().position(|&c| c != 0.0);
    match first_nonzero {
        Some(k) => {
            v.drain(..k);
            v
        }
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csa_linalg::{eigenvalues, Cplx};

    #[test]
    fn state_space_validation() {
        let bad = StateSpace::new(
            Mat::zeros(2, 3),
            Mat::zeros(2, 1),
            Mat::zeros(1, 2),
            Mat::zeros(1, 1),
        );
        assert!(bad.is_err());
        let bad_b = StateSpace::new(
            Mat::zeros(2, 2),
            Mat::zeros(3, 1),
            Mat::zeros(1, 2),
            Mat::zeros(1, 1),
        );
        assert!(bad_b.is_err());
    }

    #[test]
    fn discrete_period_validated() {
        let m = Mat::identity(1);
        assert!(DiscreteSs::new(m.clone(), m.clone(), m.clone(), m.clone(), 0.0).is_err());
        assert!(DiscreteSs::new(m.clone(), m.clone(), m.clone(), m.clone(), -1.0).is_err());
        let ok = DiscreteSs::new(Mat::scalar(0.5), m.clone(), m.clone(), m, 0.01).unwrap();
        assert!(ok.is_stable().unwrap());
    }

    #[test]
    fn tf_poles_become_state_matrix_eigenvalues() {
        // den (s+1)(s+2) = s^2 + 3s + 2.
        let g = TransferFunction::new(vec![1.0], vec![1.0, 3.0, 2.0]).unwrap();
        let ss = g.to_state_space().unwrap();
        let mut poles: Vec<f64> = eigenvalues(ss.a()).unwrap().iter().map(|l| l.re).collect();
        poles.sort_by(f64::total_cmp);
        assert!((poles[0] + 2.0).abs() < 1e-10);
        assert!((poles[1] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn pole_sort_survives_nan() {
        // Regression for the former `partial_cmp(..).unwrap()` pole
        // sort (csa-lint F001, the margins.rs snap_to_series pattern):
        // a NaN pole must sort deterministically, never panic.
        let mut poles = [f64::NAN, 1.0, f64::NEG_INFINITY, -2.0];
        poles.sort_by(f64::total_cmp);
        assert_eq!(poles[0], f64::NEG_INFINITY);
        assert_eq!(poles[1], -2.0);
        assert_eq!(poles[2], 1.0);
        assert!(poles[3].is_nan());
    }

    #[test]
    fn dc_servo_realization_matches_tf() {
        let g = TransferFunction::new(vec![1000.0], vec![1.0, 1.0, 0.0]).unwrap();
        let ss = g.to_state_space().unwrap();
        // Compare frequency response of tf and ss at a few points.
        for &w in &[0.1, 1.0, 10.0, 100.0] {
            let s = Cplx::new(0.0, w);
            let tf_val = g.evaluate(s);
            let ss_val = crate::freq::continuous_response(&ss, w).unwrap()[(0, 0)];
            assert!(
                (tf_val - ss_val).abs() < 1e-9 * tf_val.abs().max(1.0),
                "mismatch at w={w}: {tf_val} vs {ss_val}"
            );
        }
    }

    #[test]
    fn non_monic_denominator_normalized() {
        // 4 / (2s + 2) == 2/(s+1).
        let g = TransferFunction::new(vec![4.0], vec![2.0, 2.0]).unwrap();
        let ss = g.to_state_space().unwrap();
        assert!((ss.a()[(0, 0)] + 1.0).abs() < 1e-12);
        // DC gain = C(-A)^{-1}B + D = 2.
        let dc = ss.c()[(0, 0)] * ss.b()[(0, 0)] / 1.0;
        assert!((dc - 2.0).abs() < 1e-12);
    }

    #[test]
    fn biproper_tf_has_feedthrough() {
        // (s + 2)/(s + 1): D = 1, C = b1 - a1*d0 = 2 - 1 = 1.
        let g = TransferFunction::new(vec![1.0, 2.0], vec![1.0, 1.0]).unwrap();
        let ss = g.to_state_space().unwrap();
        assert!((ss.d()[(0, 0)] - 1.0).abs() < 1e-12);
        for &w in &[0.0, 0.5, 3.0] {
            let s = Cplx::new(0.0, w);
            let tf_val = g.evaluate(s);
            let ss_val = crate::freq::continuous_response(&ss, w).unwrap()[(0, 0)];
            assert!((tf_val - ss_val).abs() < 1e-10);
        }
    }

    #[test]
    fn improper_rejected() {
        assert!(TransferFunction::new(vec![1.0, 0.0, 0.0], vec![1.0, 1.0]).is_err());
        assert!(TransferFunction::new(vec![1.0], vec![0.0]).is_err());
        assert!(TransferFunction::new(vec![0.0], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn leading_zeros_trimmed() {
        let g = TransferFunction::new(vec![0.0, 5.0], vec![0.0, 1.0, 1.0]).unwrap();
        assert_eq!(g.num(), &[5.0]);
        assert_eq!(g.den(), &[1.0, 1.0]);
    }

    #[test]
    fn pure_gain_tf() {
        let g = TransferFunction::new(vec![3.0], vec![2.0]).unwrap();
        let ss = g.to_state_space().unwrap();
        assert!((ss.d()[(0, 0)] - 1.5).abs() < 1e-12);
    }
}
