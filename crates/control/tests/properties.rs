//! Property-based tests for the control substrate.

use csa_control::{
    c2d_zoh, c2d_zoh_delayed, design_lqg, discrete_response, jitter_margin, simulate, LqgWeights,
    StateSpace, TransferFunction,
};
use csa_linalg::{spectral_radius, Mat};
use proptest::prelude::*;

/// Strategy: a stable-ish strictly proper second-order plant
/// `k / (s^2 + b1 s + b0)` with positive coefficients.
fn plant_strategy() -> impl Strategy<Value = StateSpace> {
    (0.5f64..50.0, 0.2f64..6.0, 0.5f64..40.0).prop_map(|(k, b1, b0)| {
        TransferFunction::new(vec![k], vec![1.0, b1, b0])
            .expect("valid tf")
            .to_state_space()
            .expect("valid ss")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zoh_preserves_stability(plant in plant_strategy(), h in 0.005f64..0.2) {
        // A Hurwitz-stable plant discretizes to a Schur-stable one.
        let d = c2d_zoh(&plant, h).unwrap();
        prop_assert!(spectral_radius(d.a()).unwrap() < 1.0 + 1e-12);
    }

    #[test]
    fn delayed_zoh_matches_shifted_step(plant in plant_strategy(), h in 0.02f64..0.2, frac in 0.05f64..0.95) {
        // Simulating the delayed discretization with a step input must
        // match simulating the plain discretization of the same plant
        // with the step arriving tau seconds later, once both have
        // settled past the delay (sampled at common instants).
        let tau = frac * h;
        let dd = c2d_zoh_delayed(&plant, h, tau).unwrap();
        let steps = 40usize;
        let inputs: Vec<Mat> = (0..steps).map(|_| Mat::scalar(1.0)).collect();
        let delayed = simulate(&dd, &Mat::zeros(dd.order(), 1), &inputs).unwrap();
        // Reference: integrate the continuous system under the exactly
        // shifted input using fine ZOH steps.
        let fine = 200usize;
        let dt = h / fine as f64;
        let df = c2d_zoh(&plant, dt).unwrap();
        let mut x = Mat::zeros(plant.order(), 1);
        let mut reference = Vec::with_capacity(steps);
        for k in 0..steps * fine {
            let t = k as f64 * dt;
            if k % fine == 0 {
                reference.push((df.c() * &x)[(0, 0)]);
            }
            let u = if t + 0.5 * dt >= tau { 1.0 } else { 0.0 };
            x = &(df.a() * &x) + &(df.b() * &Mat::scalar(u));
        }
        let scale = reference
            .iter()
            .fold(1e-6f64, |m, &v| m.max(v.abs()));
        for k in 2..steps {
            let got = delayed[k][(0, 0)];
            prop_assert!(
                (got - reference[k]).abs() < 2e-2 * scale,
                "step {k}: delayed {got} vs reference {} (tau={tau}, h={h})",
                reference[k]
            );
        }
    }

    #[test]
    fn lqg_design_always_stabilizes_when_it_succeeds(plant in plant_strategy(), h in 0.01f64..0.1) {
        let w = LqgWeights::output_regulation(&plant, 1e-2, 1e-5);
        if let Ok(lqg) = design_lqg(&plant, &w, h, 0.0) {
            let loop_sys = csa_control::input_sensitivity_loop(&lqg.plant_d, &lqg.controller).unwrap();
            prop_assert!(spectral_radius(loop_sys.a()).unwrap() < 1.0);
        }
    }

    #[test]
    fn jitter_margin_is_nonnegative_and_bounded(plant in plant_strategy(), h in 0.01f64..0.08) {
        let w = LqgWeights::output_regulation(&plant, 1e-2, 1e-5);
        if let Ok(lqg) = design_lqg(&plant, &w, h, 0.0) {
            let j = jitter_margin(&plant, &lqg.controller, h, 0.0).unwrap();
            prop_assert!(j >= 0.0);
            prop_assert!(j <= 20.0 * h + 1e-12, "margin {j} beyond cap");
        }
    }

    #[test]
    fn discrete_response_conjugate_symmetry(plant in plant_strategy(), h in 0.01f64..0.1, w_frac in 0.05f64..0.95) {
        // G(e^{-jwh}) = conj(G(e^{jwh})) for real systems.
        let d = c2d_zoh(&plant, h).unwrap();
        let w = w_frac * std::f64::consts::PI / h;
        let g_pos = discrete_response(&d, w).unwrap()[(0, 0)];
        let g_neg = discrete_response(&d, -w).unwrap()[(0, 0)];
        prop_assert!((g_pos.conj() - g_neg).abs() < 1e-10 * g_pos.abs().max(1.0));
    }
}
