//! Differential pinning of the batched/warm-started control kernels
//! against the retained one-shot references (DESIGN.md §10).
//!
//! Contract: everything reachable through [`csa_control::KernelMode::Exact`]
//! — `design_lqg`, `jitter_margin_exact`, `delay_margin`,
//! `stability_curve_exact`, and `StabilityCurveBatch` in exact mode — is
//! *bit-identical* to `csa_control::reference`. The fast kernels
//! (`jitter_margin`, `stability_curve`, warm-started `LqgDesigner`) are
//! pinned by tolerance contracts instead: the Hessenberg sweep agrees to
//! round-off and the warm Kleinman DAREs to ~1e-9 relative.

use csa_control::{
    delay_margin, design_lqg, jitter_margin, jitter_margin_exact, plants, reference,
    stability_curve, stability_curve_exact, KernelMode, LqgDesigner, StabilityCurve,
    StabilityCurveBatch, StabilityFit,
};
use csa_linalg::Mat;

/// Geometric mid-point of a plant's period range.
fn mid_period(range: (f64, f64)) -> f64 {
    (range.0 * range.1).sqrt()
}

/// Geometric grid over a period range, mirroring the margin-table grids.
fn period_grid(range: (f64, f64), points: usize) -> Vec<f64> {
    (0..points)
        .map(|k| range.0 * (range.1 / range.0).powf(k as f64 / (points - 1) as f64))
        .collect()
}

fn assert_curve_bits_eq(a: &StabilityCurve, b: &StabilityCurve, what: &str) {
    assert_eq!(
        a.delay_margin().to_bits(),
        b.delay_margin().to_bits(),
        "{what}: delay margin differs"
    );
    assert_eq!(a.period().to_bits(), b.period().to_bits(), "{what}: period");
    assert_eq!(a.points().len(), b.points().len(), "{what}: point count");
    for (pa, pb) in a.points().iter().zip(b.points()) {
        assert_eq!(
            pa.latency.to_bits(),
            pb.latency.to_bits(),
            "{what}: latency differs at L={}",
            pa.latency
        );
        assert_eq!(
            pa.jitter_margin.to_bits(),
            pb.jitter_margin.to_bits(),
            "{what}: jitter margin differs at L={}",
            pa.latency
        );
    }
}

fn assert_mat_bits_eq(a: &Mat, b: &Mat, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a[(i, j)].to_bits(),
                b[(i, j)].to_bits(),
                "{what}: mismatch at ({i},{j})"
            );
        }
    }
}

#[test]
fn exact_pipeline_bit_identical_to_reference_across_pool() {
    let pool = plants::benchmark_pool().unwrap();
    for bp in &pool {
        let h = mid_period(bp.period_range);
        let lqg = design_lqg(&bp.plant, &bp.weights, h, 0.0).unwrap();
        let lqg_ref = reference::design_lqg(&bp.plant, &bp.weights, h, 0.0).unwrap();
        assert_mat_bits_eq(
            lqg.controller.a(),
            lqg_ref.controller.a(),
            &format!("{}: controller A", bp.name),
        );
        assert_mat_bits_eq(
            lqg.controller.b(),
            lqg_ref.controller.b(),
            &format!("{}: controller B", bp.name),
        );
        assert_mat_bits_eq(
            lqg.controller.c(),
            lqg_ref.controller.c(),
            &format!("{}: controller C", bp.name),
        );
        assert_mat_bits_eq(
            &lqg.feedback_gain,
            &lqg_ref.feedback_gain,
            &format!("{}: K", bp.name),
        );
        assert_mat_bits_eq(
            &lqg.kalman_gain,
            &lqg_ref.kalman_gain,
            &format!("{}: Kf", bp.name),
        );

        let curve = stability_curve_exact(&bp.plant, &lqg.controller, h, 7).unwrap();
        let curve_ref = reference::stability_curve(&bp.plant, &lqg_ref.controller, h, 7).unwrap();
        assert_curve_bits_eq(&curve, &curve_ref, bp.name);
    }
}

#[test]
fn exact_scalar_kernels_bit_identical_to_reference() {
    let pool = plants::benchmark_pool().unwrap();
    let bp = pool.iter().find(|p| p.name == "dc_servo").unwrap();
    let h = mid_period(bp.period_range);
    let lqg = design_lqg(&bp.plant, &bp.weights, h, 0.0).unwrap();
    let dm = delay_margin(&bp.plant, &lqg.controller, h).unwrap();
    let dm_ref = reference::delay_margin(&bp.plant, &lqg.controller, h).unwrap();
    assert_eq!(dm.to_bits(), dm_ref.to_bits(), "delay margin");
    for &l in &[0.0, 0.3 * dm, 0.8 * dm, 1.2 * dm] {
        let j = jitter_margin_exact(&bp.plant, &lqg.controller, h, l).unwrap();
        let j_ref = reference::jitter_margin(&bp.plant, &lqg.controller, h, l).unwrap();
        assert_eq!(j.to_bits(), j_ref.to_bits(), "jitter margin at L={l}");
    }
}

#[test]
fn fast_kernel_within_tolerance_of_exact() {
    let pool = plants::benchmark_pool().unwrap();
    for bp in &pool {
        let h = mid_period(bp.period_range);
        let lqg = design_lqg(&bp.plant, &bp.weights, h, 0.0).unwrap();
        let dm = delay_margin(&bp.plant, &lqg.controller, h).unwrap();
        for &l in &[0.0, 0.4 * dm, 0.9 * dm] {
            let exact = jitter_margin_exact(&bp.plant, &lqg.controller, h, l).unwrap();
            let fast = jitter_margin(&bp.plant, &lqg.controller, h, l).unwrap();
            assert!(
                (fast - exact).abs() <= 1e-9 * exact.abs().max(1e-12),
                "{}: fast/exact drift at L={l}: {fast} vs {exact}",
                bp.name
            );
        }
        // Beyond the delay margin both modes return exactly 0.0 (the
        // nominal-stability pre-check is shared).
        let beyond = jitter_margin(&bp.plant, &lqg.controller, h, dm * 1.05).unwrap();
        assert_eq!(beyond, 0.0, "{}: fast mode beyond delay margin", bp.name);
    }
}

#[test]
fn fast_curve_within_tolerance_of_exact() {
    let pool = plants::benchmark_pool().unwrap();
    let bp = pool.iter().find(|p| p.name == "pendulum").unwrap();
    let h = mid_period(bp.period_range);
    let lqg = design_lqg(&bp.plant, &bp.weights, h, 0.0).unwrap();
    let exact = stability_curve_exact(&bp.plant, &lqg.controller, h, 9).unwrap();
    let fast = stability_curve(&bp.plant, &lqg.controller, h, 9).unwrap();
    assert_eq!(
        exact.delay_margin().to_bits(),
        fast.delay_margin().to_bits()
    );
    for (pe, pf) in exact.points().iter().zip(fast.points()) {
        assert_eq!(pe.latency.to_bits(), pf.latency.to_bits());
        assert!(
            (pe.jitter_margin - pf.jitter_margin).abs() <= 1e-9 * pe.jitter_margin.max(1e-12),
            "curve drift at L={}: {} vs {}",
            pe.latency,
            pf.jitter_margin,
            pe.jitter_margin
        );
    }
}

#[test]
fn batch_exact_cells_bit_identical_to_one_shot_pipeline() {
    let pool = plants::benchmark_pool().unwrap();
    let mut batch = StabilityCurveBatch::new(KernelMode::Exact);
    for bp in &pool {
        let grid = period_grid(bp.period_range, 3);
        let cells = batch.curve_grid(&bp.plant, &bp.weights, &grid, 0.0, 5);
        for (&h, cell) in grid.iter().zip(&cells) {
            let one_shot = match design_lqg(&bp.plant, &bp.weights, h, 0.0) {
                Ok(lqg) => match stability_curve_exact(&bp.plant, &lqg.controller, h, 5) {
                    Ok(curve) if curve.delay_margin() > 0.0 => {
                        let fit = StabilityFit::from_curve(&curve);
                        Some((curve, fit))
                    }
                    _ => None,
                },
                Err(_) => None,
            };
            match (cell, &one_shot) {
                (Some((curve, fit)), Some((curve1, fit1))) => {
                    assert_curve_bits_eq(curve, curve1, &format!("{} h={h}", bp.name));
                    assert_eq!(fit.a.to_bits(), fit1.a.to_bits(), "{}: fit a", bp.name);
                    assert_eq!(fit.b.to_bits(), fit1.b.to_bits(), "{}: fit b", bp.name);
                }
                (None, None) => {}
                (got, want) => panic!(
                    "{} h={h}: batch cell presence {} vs one-shot {}",
                    bp.name,
                    got.is_some(),
                    want.is_some()
                ),
            }
        }
    }
}

#[test]
fn warm_designer_matches_cold_across_period_grid() {
    let pool = plants::benchmark_pool().unwrap();
    let bp = pool.iter().find(|p| p.name == "dc_servo").unwrap();
    let grid = period_grid(bp.period_range, 8);
    let mut warm = LqgDesigner::warm_started();
    for (k, &h) in grid.iter().enumerate() {
        let cold = design_lqg(&bp.plant, &bp.weights, h, 0.0).unwrap();
        let got = warm.design(&bp.plant, &bp.weights, h, 0.0).unwrap();
        if k == 0 {
            // No seed yet: the warm designer takes the cold path and must
            // reproduce it bit-for-bit.
            assert_mat_bits_eq(&got.feedback_gain, &cold.feedback_gain, "first-call K");
            assert_mat_bits_eq(&got.kalman_gain, &cold.kalman_gain, "first-call Kf");
        }
        let kscale = cold.feedback_gain.max_abs().max(1.0);
        assert!(
            got.feedback_gain.max_abs_diff(&cold.feedback_gain) <= 1e-7 * kscale,
            "warm K drifted at h={h}: {}",
            got.feedback_gain.max_abs_diff(&cold.feedback_gain) / kscale
        );
        let fscale = cold.kalman_gain.max_abs().max(1.0);
        assert!(
            got.kalman_gain.max_abs_diff(&cold.kalman_gain) <= 1e-7 * fscale,
            "warm Kf drifted at h={h}"
        );
        let ascale = cold.controller.a().max_abs().max(1.0);
        assert!(
            got.controller.a().max_abs_diff(cold.controller.a()) <= 1e-6 * ascale,
            "warm controller A drifted at h={h}"
        );
    }
}

#[test]
fn batch_fast_grid_matches_exact_within_tolerance() {
    let pool = plants::benchmark_pool().unwrap();
    let bp = pool.iter().find(|p| p.name == "second_order_lag").unwrap();
    let grid = period_grid(bp.period_range, 4);
    let mut exact = StabilityCurveBatch::new(KernelMode::Exact);
    let mut fast = StabilityCurveBatch::new(KernelMode::Fast);
    let cells_e = exact.curve_grid(&bp.plant, &bp.weights, &grid, 0.0, 5);
    let cells_f = fast.curve_grid(&bp.plant, &bp.weights, &grid, 0.0, 5);
    for ((&h, ce), cf) in grid.iter().zip(&cells_e).zip(&cells_f) {
        match (ce, cf) {
            (Some((_, fe)), Some((_, ff))) => {
                assert!(
                    (fe.a - ff.a).abs() <= 1e-6 * fe.a.max(1.0),
                    "fit a drift at h={h}: {} vs {}",
                    ff.a,
                    fe.a
                );
                assert!(
                    (fe.b - ff.b).abs() <= 1e-6 * fe.b.max(1e-12),
                    "fit b drift at h={h}: {} vs {}",
                    ff.b,
                    fe.b
                );
            }
            (None, None) => {}
            _ => panic!("fast/exact cell presence differs at h={h}"),
        }
    }
}
