//! Per-job execution-time policies.
//!
//! The task model only bounds execution times to `[c_b, c_w]`; a simulation
//! must pick a concrete value for every job. Different policies exercise
//! different corners: the analytical worst case needs `c_w` everywhere, the
//! best case `c_b`, and randomized policies probe the interior.

use csa_rta::{Task, Ticks};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chooses the execution time of each job of each task.
pub trait ExecutionPolicy {
    /// Execution time for job number `job_index` (0-based) of `task`.
    ///
    /// Implementations must return a value in `[task.c_best(),
    /// task.c_worst()]`; the simulator clamps out-of-range values and
    /// debug-asserts.
    fn execution_time(&mut self, task: &Task, job_index: u64) -> Ticks;
}

/// Every job takes its worst-case execution time `c_w`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstCasePolicy;

impl ExecutionPolicy for WorstCasePolicy {
    fn execution_time(&mut self, task: &Task, _job_index: u64) -> Ticks {
        task.c_worst()
    }
}

/// Every job takes its best-case execution time `c_b`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestCasePolicy;

impl ExecutionPolicy for BestCasePolicy {
    fn execution_time(&mut self, task: &Task, _job_index: u64) -> Ticks {
        task.c_best()
    }
}

/// Jobs alternate between worst- and best-case execution times, a cheap
/// deterministic way to produce jitter.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlternatingPolicy;

impl ExecutionPolicy for AlternatingPolicy {
    fn execution_time(&mut self, task: &Task, job_index: u64) -> Ticks {
        if job_index.is_multiple_of(2) {
            task.c_worst()
        } else {
            task.c_best()
        }
    }
}

/// Execution times drawn uniformly from `[c_b, c_w]` with a seeded RNG
/// (deterministic given the seed).
#[derive(Debug, Clone)]
pub struct UniformPolicy {
    rng: StdRng,
}

impl UniformPolicy {
    /// Creates a policy with the given seed.
    pub fn new(seed: u64) -> Self {
        UniformPolicy {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ExecutionPolicy for UniformPolicy {
    fn execution_time(&mut self, task: &Task, _job_index: u64) -> Ticks {
        let lo = task.c_best().get();
        let hi = task.c_worst().get();
        Ticks::new(self.rng.gen_range(lo..=hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csa_rta::TaskId;

    fn task() -> Task {
        Task::new(TaskId::new(0), Ticks::new(2), Ticks::new(8), Ticks::new(20)).unwrap()
    }

    #[test]
    fn worst_and_best() {
        let t = task();
        assert_eq!(WorstCasePolicy.execution_time(&t, 0), Ticks::new(8));
        assert_eq!(BestCasePolicy.execution_time(&t, 0), Ticks::new(2));
    }

    #[test]
    fn alternating_toggles() {
        let t = task();
        let mut p = AlternatingPolicy;
        assert_eq!(p.execution_time(&t, 0), Ticks::new(8));
        assert_eq!(p.execution_time(&t, 1), Ticks::new(2));
        assert_eq!(p.execution_time(&t, 2), Ticks::new(8));
    }

    #[test]
    fn uniform_in_range_and_deterministic() {
        let t = task();
        let mut p1 = UniformPolicy::new(5);
        let mut p2 = UniformPolicy::new(5);
        for j in 0..100 {
            let a = p1.execution_time(&t, j);
            let b = p2.execution_time(&t, j);
            assert_eq!(a, b);
            assert!(a >= t.c_best() && a <= t.c_worst());
        }
    }
}
