//! The original scan-based simulation loop, retained as the oracle.
//!
//! This is the loop `Simulator::run` executed before the event-queue
//! core (`event_core.rs`) replaced it: every scheduling event pays three
//! O(n) scans — a release sweep over all tasks, a `max_by_key` over the
//! flat ready queue, and a `min` over the next-release vector. It is
//! kept verbatim (adapted only to the shared trace sink and the
//! `in_flight` accounting) as the semantic reference: the differential
//! proptest suite (`tests/differential.rs`) pins the event core
//! bit-identical to it, the same pattern as `csa_core::reference`.
//!
//! Use [`run`] directly only to benchmark against or test the event
//! core; production callers go through [`Simulator::run`].

use crate::policy::ExecutionPolicy;
use crate::simulator::{finalize_stats, init_stats, SimOutcome, Simulator, TraceEvent};
use csa_rta::Ticks;

/// An active job in the flat ready queue.
#[derive(Debug, Clone, Copy)]
struct Job {
    task_index: usize,
    release: Ticks,
    remaining: Ticks,
}

/// Runs the simulation with the original O(n)-per-event loop. Same
/// inputs, same `SimOutcome` — bit-identical to [`Simulator::run`] —
/// just slower on large or long-horizon task sets.
pub fn run<P: ExecutionPolicy + ?Sized>(
    sim: &Simulator,
    horizon: Ticks,
    policy: &mut P,
) -> SimOutcome {
    let n = sim.tasks.len();
    let mut next_release: Vec<Ticks> = sim.tasks.iter().map(|t| t.offset).collect();
    let mut job_count = vec![0u64; n];
    let mut ready: Vec<Job> = Vec::new();
    let mut sink = sim.trace_sink();
    let mut stats = init_stats(&sim.tasks);

    let mut now = Ticks::ZERO;
    loop {
        // Release every job due at or before `now`.
        for i in 0..n {
            while next_release[i] <= now && next_release[i] < horizon {
                let release = next_release[i];
                let c = sim.execution_time(policy, i, job_count[i]);
                job_count[i] += 1;
                next_release[i] = release + sim.tasks[i].task.period();
                ready.push(Job {
                    task_index: i,
                    release,
                    remaining: c,
                });
                sink.push(TraceEvent::Release {
                    at: release,
                    task_id: sim.tasks[i].task.id(),
                });
            }
        }

        // Pick the highest-priority ready job (FIFO within a task).
        let running = ready
            .iter()
            .enumerate()
            .max_by_key(|(_, j)| {
                (
                    sim.tasks[j.task_index].priority,
                    std::cmp::Reverse(j.release),
                )
            })
            .map(|(idx, _)| idx);

        let next_rel = next_release.iter().copied().filter(|&r| r < horizon).min();

        let Some(run_idx) = running else {
            // Idle: jump to the next release, or stop.
            match next_rel {
                Some(r) if r < horizon => {
                    now = r;
                    continue;
                }
                _ => break,
            }
        };

        let job = ready[run_idx];
        let finish_at = now + job.remaining;
        let until = match next_rel {
            Some(r) if r < finish_at => r,
            _ => finish_at,
        };
        // Never run past the horizon.
        let until = until.min(horizon);
        if until > now {
            sink.push(TraceEvent::Run {
                from: now,
                to: until,
                task_id: sim.tasks[job.task_index].task.id(),
            });
            let executed = until - now;
            ready[run_idx].remaining -= executed;
        }
        if ready[run_idx].remaining.is_zero() {
            let done = ready.swap_remove(run_idx);
            let response = until - done.release;
            let s = &mut stats[done.task_index];
            s.completed += 1;
            s.total += response;
            s.min = s.min.min(response);
            s.max = s.max.max(response);
            if response > sim.tasks[done.task_index].task.period() {
                s.deadline_misses += 1;
            }
            sink.push(TraceEvent::Completion {
                at: until,
                task_id: sim.tasks[done.task_index].task.id(),
                response,
            });
        }
        if until >= horizon {
            break;
        }
        now = until;
    }

    for job in &ready {
        stats[job.task_index].in_flight += 1;
    }
    finalize_stats(&mut stats);
    let (trace, trace_dropped) = sink.finish();
    SimOutcome {
        stats,
        trace,
        trace_dropped,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WorstCasePolicy;
    use crate::simulator::SimTask;
    use csa_rta::{Task, TaskId};

    #[test]
    fn reference_matches_event_core_on_a_hand_case() {
        let hi = Task::with_fixed_execution(TaskId::new(0), Ticks::new(1), Ticks::new(4)).unwrap();
        let lo = Task::with_fixed_execution(TaskId::new(1), Ticks::new(2), Ticks::new(10)).unwrap();
        let sim = Simulator::new(vec![SimTask::new(hi, 2), SimTask::new(lo, 1)])
            .unwrap()
            .record_trace(true);
        let a = run(&sim, Ticks::new(40), &mut WorstCasePolicy);
        let b = sim.run(Ticks::new(40), &mut WorstCasePolicy);
        assert_eq!(a, b);
    }
}
