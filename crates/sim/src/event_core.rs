//! Event-queue simulation core (DESIGN.md §12).
//!
//! The reference loop (`reference.rs`) pays three O(n) scans per
//! scheduling event: a release sweep over all tasks, a `max_by_key` over
//! the ready queue, and a `min` over the next-release vector. This core
//! replaces them with
//!
//! 1. a **release queue**: a [`BinaryHeap`] of [`QueuedRelease`] with
//!    flipped `Ord` (Rust's heap is a max-heap, so ordering is reversed
//!    to pop the minimum), keyed by `(time, task_index)` — the exact
//!    order the reference release sweep visits tasks, which is observable
//!    through stateful execution policies and the trace; and
//! 2. a **ready index**: tasks keyed by priority *rank* in a `u64` bitmap
//!    for n ≤ 64 (highest ready rank via `leading_zeros`, O(1)) falling
//!    back to an ordered set beyond that, plus one FIFO job queue per
//!    task (jobs of one task complete in release order).
//!
//! Completions need no queued events at all: the running job is always
//! the front of the highest-ranked ready queue, so its finish time is
//! implicit (`now + remaining`) and never needs invalidating on
//! preemption. Each event therefore costs O(log n) heap maintenance
//! instead of Θ(n) scans, and an idle processor jumps straight to the
//! next release.
//!
//! The loop structure below mirrors the reference loop step for step;
//! the differential suite (`tests/differential.rs`) pins the two
//! bit-identical across task sets, offsets, policies, and horizons.

use crate::policy::ExecutionPolicy;
use crate::simulator::{finalize_stats, init_stats, SimOutcome, Simulator, TraceEvent};
use csa_rta::Ticks;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

/// A pending job release. `Ord` is flipped so that [`BinaryHeap`] (a
/// max-heap) pops the earliest `(time, task_index)` first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedRelease {
    time: Ticks,
    task_index: usize,
}

impl Ord for QueuedRelease {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.task_index.cmp(&self.task_index))
    }
}

impl PartialOrd for QueuedRelease {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Set of tasks with at least one pending job, keyed by priority rank
/// (`n - 1` = highest priority).
#[derive(Debug)]
enum ReadyIndex {
    /// One bit per rank; the running task is the highest set bit.
    Bitmap(u64),
    /// Fallback for n > 64 ranks.
    Tree(BTreeSet<usize>),
}

impl ReadyIndex {
    fn new(n: usize) -> Self {
        if n <= 64 {
            ReadyIndex::Bitmap(0)
        } else {
            ReadyIndex::Tree(BTreeSet::new())
        }
    }

    /// Marks a rank ready (idempotent: a task may queue several jobs).
    fn insert(&mut self, rank: usize) {
        match self {
            ReadyIndex::Bitmap(bits) => *bits |= 1u64 << rank,
            ReadyIndex::Tree(set) => {
                set.insert(rank);
            }
        }
    }

    fn remove(&mut self, rank: usize) {
        match self {
            ReadyIndex::Bitmap(bits) => *bits &= !(1u64 << rank),
            ReadyIndex::Tree(set) => {
                set.remove(&rank);
            }
        }
    }

    /// Highest ready rank, if any.
    fn highest(&self) -> Option<usize> {
        match self {
            ReadyIndex::Bitmap(bits) => bits.checked_ilog2().map(|b| b as usize),
            ReadyIndex::Tree(set) => set.last().copied(),
        }
    }
}

/// A pending job of one task (the task index is the queue it sits in).
#[derive(Debug, Clone, Copy)]
struct Job {
    release: Ticks,
    remaining: Ticks,
}

/// Runs the simulation on the event-queue core. Public API:
/// [`Simulator::run`]. Semantics are bit-identical to
/// [`crate::reference::run`].
pub(crate) fn run<P: ExecutionPolicy + ?Sized>(
    sim: &Simulator,
    horizon: Ticks,
    policy: &mut P,
) -> SimOutcome {
    let n = sim.tasks.len();
    let mut sink = sim.trace_sink();
    let mut stats = init_stats(&sim.tasks);
    let mut job_count = vec![0u64; n];
    let mut queues: Vec<VecDeque<Job>> = vec![VecDeque::new(); n];
    let mut ready = ReadyIndex::new(n);
    let mut releases: BinaryHeap<QueuedRelease> = BinaryHeap::with_capacity(n + 1);
    for (i, t) in sim.tasks.iter().enumerate() {
        // Releases at or past the horizon never happen (matching the
        // reference sweep's `next_release[i] < horizon` guard), so they
        // never enter the heap and the heap holds at most one entry per
        // task.
        if t.offset < horizon {
            releases.push(QueuedRelease {
                time: t.offset,
                task_index: i,
            });
        }
    }

    let mut now = Ticks::ZERO;
    loop {
        // Release every job due at `now`, ending with the next pending
        // release time in hand (one heap inspection serves both the
        // sweep and the slice-cut below). The heap never holds a release
        // in the past: busy intervals are cut at the next release and
        // idle intervals jump straight to it. A task's next release
        // replaces its current heap entry in place (`PeekMut` re-sifts
        // on drop: one sift instead of a pop + push pair).
        let next_rel: Option<Ticks> = loop {
            let Some(mut top) = releases.peek_mut() else {
                break None;
            };
            let QueuedRelease { time, task_index } = *top;
            if time > now {
                break Some(time);
            }
            let next = time + sim.tasks[task_index].task.period();
            if next < horizon {
                top.time = next;
                drop(top);
            } else {
                std::collections::binary_heap::PeekMut::pop(top);
            }
            let c = sim.execution_time(policy, task_index, job_count[task_index]);
            job_count[task_index] += 1;
            queues[task_index].push_back(Job {
                release: time,
                remaining: c,
            });
            ready.insert(sim.rank_of[task_index]);
            sink.push(TraceEvent::Release {
                at: time,
                task_id: sim.tasks[task_index].task.id(),
            });
        };

        // The running job is the front (earliest release) of the
        // highest-ranked ready queue.
        let Some(rank) = ready.highest() else {
            // Idle: jump to the next release, or stop.
            match next_rel {
                Some(r) => {
                    now = r;
                    continue;
                }
                None => break,
            }
        };
        let ti = sim.task_at_rank[rank];
        let job = queues[ti].front_mut().expect("ready task has a queued job");
        let finish_at = now + job.remaining;
        let until = match next_rel {
            Some(r) if r < finish_at => r,
            _ => finish_at,
        };
        // Never run past the horizon.
        let until = until.min(horizon);
        if until > now {
            sink.push(TraceEvent::Run {
                from: now,
                to: until,
                task_id: sim.tasks[ti].task.id(),
            });
            job.remaining -= until - now;
        }
        if job.remaining.is_zero() {
            let done = queues[ti].pop_front().expect("front job just ran");
            if queues[ti].is_empty() {
                ready.remove(rank);
            }
            let response = until - done.release;
            let s = &mut stats[ti];
            s.completed += 1;
            s.total += response;
            s.min = s.min.min(response);
            s.max = s.max.max(response);
            if response > sim.tasks[ti].task.period() {
                s.deadline_misses += 1;
            }
            sink.push(TraceEvent::Completion {
                at: until,
                task_id: sim.tasks[ti].task.id(),
                response,
            });
        }
        if until >= horizon {
            break;
        }
        now = until;
    }

    for (s, q) in stats.iter_mut().zip(&queues) {
        s.in_flight = q.len() as u64;
    }
    finalize_stats(&mut stats);
    let (trace, trace_dropped) = sink.finish();
    SimOutcome {
        stats,
        trace,
        trace_dropped,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_heap_pops_time_then_task_index() {
        let mut heap = BinaryHeap::new();
        for (time, task_index) in [(5u64, 1usize), (3, 2), (5, 0), (3, 0), (9, 3)] {
            heap.push(QueuedRelease {
                time: Ticks::new(time),
                task_index,
            });
        }
        let mut popped = Vec::new();
        while let Some(r) = heap.pop() {
            popped.push((r.time.get(), r.task_index));
        }
        assert_eq!(popped, vec![(3, 0), (3, 2), (5, 0), (5, 1), (9, 3)]);
    }

    #[test]
    fn bitmap_index_tracks_highest_rank() {
        let mut idx = ReadyIndex::new(8);
        assert_eq!(idx.highest(), None);
        idx.insert(3);
        idx.insert(5);
        idx.insert(0);
        assert_eq!(idx.highest(), Some(5));
        idx.insert(5); // idempotent
        idx.remove(5);
        assert_eq!(idx.highest(), Some(3));
        idx.remove(3);
        idx.remove(0);
        assert_eq!(idx.highest(), None);
        // Top bit of the 64-rank bitmap.
        let mut full = ReadyIndex::new(64);
        full.insert(63);
        full.insert(62);
        assert_eq!(full.highest(), Some(63));
    }

    #[test]
    fn tree_fallback_matches_bitmap_semantics() {
        let mut idx = ReadyIndex::new(100);
        assert!(matches!(idx, ReadyIndex::Tree(_)));
        assert_eq!(idx.highest(), None);
        idx.insert(70);
        idx.insert(99);
        idx.insert(70);
        assert_eq!(idx.highest(), Some(99));
        idx.remove(99);
        assert_eq!(idx.highest(), Some(70));
    }
}
