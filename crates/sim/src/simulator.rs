//! Event-driven fixed-priority preemptive uniprocessor simulation.
//!
//! The simulator advances exact integer time between two kinds of events —
//! job releases and job completions — always running the highest-priority
//! ready job, preempting instantly on releases. It validates the analytical
//! response-time bounds from `csa-rta` and provides observed
//! latency/jitter for the examples.

use crate::policy::ExecutionPolicy;
use csa_rta::{Task, TaskId, Ticks};

/// A task plus its fixed priority. Larger [`SimTask::priority`] values
/// preempt smaller ones, matching the paper's `rho_i > rho_j` convention.
#[derive(Debug, Clone, Copy)]
pub struct SimTask {
    /// The periodic task.
    pub task: Task,
    /// Scheduling priority; must be unique within a simulation.
    pub priority: u32,
    /// Release offset of the first job (0 = synchronous/critical instant).
    pub offset: Ticks,
}

impl SimTask {
    /// Creates a simulation task with zero offset.
    pub fn new(task: Task, priority: u32) -> Self {
        SimTask {
            task,
            priority,
            offset: Ticks::ZERO,
        }
    }

    /// Creates a simulation task with a release offset.
    pub fn with_offset(task: Task, priority: u32, offset: Ticks) -> Self {
        SimTask {
            task,
            priority,
            offset,
        }
    }
}

/// Observed per-task response-time statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseStats {
    /// Task these statistics belong to.
    pub task_id: TaskId,
    /// Number of completed jobs.
    pub completed: u64,
    /// Smallest observed response time (observed best case).
    pub min: Ticks,
    /// Largest observed response time (observed worst case).
    pub max: Ticks,
    /// Sum of response times (for means).
    pub total: Ticks,
    /// Number of jobs that finished after their implicit deadline.
    pub deadline_misses: u64,
}

impl ResponseStats {
    /// Observed latency: the minimum response time (cf. Eq. 2).
    pub fn observed_latency(&self) -> Ticks {
        self.min
    }

    /// Observed response-time jitter: `max - min` (cf. Eq. 2).
    pub fn observed_jitter(&self) -> Ticks {
        self.max - self.min
    }

    /// Mean response time in seconds.
    pub fn mean_secs(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total.as_secs_f64() / self.completed as f64
        }
    }
}

/// One entry of a recorded schedule trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A job of `task_id` was released.
    Release {
        /// Release instant.
        at: Ticks,
        /// Task released.
        task_id: TaskId,
    },
    /// The processor started (or resumed) executing a job.
    Run {
        /// Start of the execution slice.
        from: Ticks,
        /// End of the execution slice.
        to: Ticks,
        /// Task executing.
        task_id: TaskId,
    },
    /// A job of `task_id` completed with the given response time.
    Completion {
        /// Completion instant.
        at: Ticks,
        /// Task completed.
        task_id: TaskId,
        /// Response time of the completed job.
        response: Ticks,
    },
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-task statistics, in the order tasks were supplied.
    pub stats: Vec<ResponseStats>,
    /// Recorded trace (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Time at which the simulation stopped.
    pub horizon: Ticks,
}

impl SimOutcome {
    /// Statistics for a given task id, if it was part of the simulation.
    pub fn stats_for(&self, id: TaskId) -> Option<&ResponseStats> {
        self.stats.iter().find(|s| s.task_id == id)
    }
}

/// An active job in the ready queue.
#[derive(Debug, Clone, Copy)]
struct Job {
    task_index: usize,
    release: Ticks,
    remaining: Ticks,
}

/// Fixed-priority preemptive simulator.
///
/// # Examples
///
/// ```
/// use csa_rta::{Task, TaskId, Ticks};
/// use csa_sim::{Simulator, SimTask, WorstCasePolicy};
///
/// # fn main() -> Result<(), csa_rta::InvalidTask> {
/// let hi = SimTask::new(Task::with_fixed_execution(TaskId::new(0), Ticks::new(1), Ticks::new(4))?, 2);
/// let lo = SimTask::new(Task::with_fixed_execution(TaskId::new(1), Ticks::new(2), Ticks::new(10))?, 1);
/// let outcome = Simulator::new(vec![hi, lo])
///     .run(Ticks::new(40), &mut WorstCasePolicy);
/// // The low-priority task's first job sees one preemption: response 3.
/// assert_eq!(outcome.stats[1].max, Ticks::new(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    tasks: Vec<SimTask>,
    record_trace: bool,
}

impl Simulator {
    /// Creates a simulator over the given prioritized tasks.
    ///
    /// # Panics
    ///
    /// Panics if two tasks share a priority (the schedule would be
    /// ambiguous) or if `tasks` is empty.
    pub fn new(tasks: Vec<SimTask>) -> Self {
        assert!(!tasks.is_empty(), "need at least one task");
        for (i, a) in tasks.iter().enumerate() {
            for b in &tasks[i + 1..] {
                assert_ne!(
                    a.priority,
                    b.priority,
                    "priorities must be unique ({} vs {})",
                    a.task.id(),
                    b.task.id()
                );
            }
        }
        Simulator {
            tasks,
            record_trace: false,
        }
    }

    /// Enables trace recording (releases, execution slices, completions).
    pub fn record_trace(mut self, enable: bool) -> Self {
        self.record_trace = enable;
        self
    }

    /// Runs the simulation until `horizon`, drawing execution times from
    /// `policy`.
    ///
    /// Jobs released before the horizon but unfinished at it are discarded
    /// (they do not contribute statistics). Deadline misses do not abort
    /// the job — the overrunning job keeps executing at its priority and
    /// the miss is counted, letting over-utilized sets run to the horizon.
    pub fn run<P: ExecutionPolicy + ?Sized>(&self, horizon: Ticks, policy: &mut P) -> SimOutcome {
        let n = self.tasks.len();
        let mut next_release: Vec<Ticks> = self.tasks.iter().map(|t| t.offset).collect();
        let mut job_count = vec![0u64; n];
        let mut ready: Vec<Job> = Vec::new();
        let mut trace = Vec::new();
        let mut stats: Vec<ResponseStats> = self
            .tasks
            .iter()
            .map(|t| ResponseStats {
                task_id: t.task.id(),
                completed: 0,
                min: Ticks::MAX,
                max: Ticks::ZERO,
                total: Ticks::ZERO,
                deadline_misses: 0,
            })
            .collect();

        let mut now = Ticks::ZERO;
        loop {
            // Release every job due at or before `now`.
            for i in 0..n {
                while next_release[i] <= now && next_release[i] < horizon {
                    let release = next_release[i];
                    let c = self.execution_time(policy, i, job_count[i]);
                    job_count[i] += 1;
                    next_release[i] = release + self.tasks[i].task.period();
                    ready.push(Job {
                        task_index: i,
                        release,
                        remaining: c,
                    });
                    if self.record_trace {
                        trace.push(TraceEvent::Release {
                            at: release,
                            task_id: self.tasks[i].task.id(),
                        });
                    }
                }
            }

            // Pick the highest-priority ready job (FIFO within a task).
            let running = ready
                .iter()
                .enumerate()
                .max_by_key(|(_, j)| {
                    (
                        self.tasks[j.task_index].priority,
                        std::cmp::Reverse(j.release),
                    )
                })
                .map(|(idx, _)| idx);

            let next_rel = next_release.iter().copied().filter(|&r| r < horizon).min();

            let Some(run_idx) = running else {
                // Idle: jump to the next release, or stop.
                match next_rel {
                    Some(r) if r < horizon => {
                        now = r;
                        continue;
                    }
                    _ => break,
                }
            };

            let job = ready[run_idx];
            let finish_at = now + job.remaining;
            let until = match next_rel {
                Some(r) if r < finish_at => r,
                _ => finish_at,
            };
            // Never run past the horizon.
            let until = until.min(horizon);
            if until > now {
                if self.record_trace {
                    trace.push(TraceEvent::Run {
                        from: now,
                        to: until,
                        task_id: self.tasks[job.task_index].task.id(),
                    });
                }
                let executed = until - now;
                ready[run_idx].remaining -= executed;
            }
            if ready[run_idx].remaining.is_zero() {
                let done = ready.swap_remove(run_idx);
                let response = until - done.release;
                let s = &mut stats[done.task_index];
                s.completed += 1;
                s.total += response;
                s.min = s.min.min(response);
                s.max = s.max.max(response);
                if response > self.tasks[done.task_index].task.period() {
                    s.deadline_misses += 1;
                }
                if self.record_trace {
                    trace.push(TraceEvent::Completion {
                        at: until,
                        task_id: self.tasks[done.task_index].task.id(),
                        response,
                    });
                }
            }
            if until >= horizon {
                break;
            }
            now = until;
        }

        // Normalize empty stats (min stays MAX if nothing completed).
        for s in &mut stats {
            if s.completed == 0 {
                s.min = Ticks::ZERO;
            }
        }
        SimOutcome {
            stats,
            trace,
            horizon,
        }
    }

    fn execution_time<P: ExecutionPolicy + ?Sized>(
        &self,
        policy: &mut P,
        task_index: usize,
        job_index: u64,
    ) -> Ticks {
        let task = &self.tasks[task_index].task;
        let c = policy.execution_time(task, job_index);
        debug_assert!(
            c >= task.c_best() && c <= task.c_worst(),
            "policy returned {c} outside [{}, {}] for {}",
            task.c_best(),
            task.c_worst(),
            task.id()
        );
        c.max(task.c_best()).min(task.c_worst())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AlternatingPolicy, BestCasePolicy, UniformPolicy, WorstCasePolicy};
    use csa_rta::{response_bounds, Task, TaskId};

    fn t(id: u32, c: u64, h: u64) -> Task {
        Task::with_fixed_execution(TaskId::new(id), Ticks::new(c), Ticks::new(h)).unwrap()
    }

    fn tb(id: u32, cb: u64, cw: u64, h: u64) -> Task {
        Task::new(
            TaskId::new(id),
            Ticks::new(cb),
            Ticks::new(cw),
            Ticks::new(h),
        )
        .unwrap()
    }

    #[test]
    fn single_task_response_is_execution_time() {
        let sim = Simulator::new(vec![SimTask::new(t(0, 3, 10), 1)]);
        let out = sim.run(Ticks::new(100), &mut WorstCasePolicy);
        assert_eq!(out.stats[0].completed, 10);
        assert_eq!(out.stats[0].min, Ticks::new(3));
        assert_eq!(out.stats[0].max, Ticks::new(3));
        assert_eq!(out.stats[0].deadline_misses, 0);
    }

    #[test]
    fn two_task_hand_schedule() {
        // hi: c=1 h=4; lo: c=2 h=10 synchronous.
        // Schedule: [0,1) hi, [1,3) lo done at 3 (response 3).
        // Second lo job at 10: hi released at 12 preempts? lo runs [10,12)
        // done at 12 response 2: wait hi releases at 8 runs [8,9), then
        // idle; at 10 lo released, runs [10,12), hi at 12 — lo already
        // done exactly at 12.
        let sim = Simulator::new(vec![
            SimTask::new(t(0, 1, 4), 2),
            SimTask::new(t(1, 2, 10), 1),
        ])
        .record_trace(true);
        let out = sim.run(Ticks::new(20), &mut WorstCasePolicy);
        let lo = out.stats_for(TaskId::new(1)).unwrap();
        assert_eq!(lo.completed, 2);
        assert_eq!(lo.max, Ticks::new(3));
        assert_eq!(lo.min, Ticks::new(2));
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn critical_instant_reproduces_wcrt() {
        // Synchronous release with worst-case execution: the first job of
        // the lowest-priority task must exhibit exactly the analytical WCRT.
        let t1 = t(0, 1, 4);
        let t2 = t(1, 2, 6);
        let t3 = t(2, 3, 10);
        let rb = response_bounds(&t3, &[t1, t2]).unwrap();
        let sim = Simulator::new(vec![
            SimTask::new(t1, 3),
            SimTask::new(t2, 2),
            SimTask::new(t3, 1),
        ]);
        let out = sim.run(Ticks::new(10), &mut WorstCasePolicy);
        assert_eq!(out.stats[2].max, rb.wcrt);
    }

    #[test]
    fn responses_within_analytical_bounds() {
        let t1 = tb(0, 1, 2, 7);
        let t2 = tb(1, 1, 3, 13);
        let t3 = tb(2, 2, 4, 31);
        let rb3 = response_bounds(&t3, &[t1, t2]).unwrap();
        let sim = Simulator::new(vec![
            SimTask::new(t1, 3),
            SimTask::new(t2, 2),
            SimTask::new(t3, 1),
        ]);
        for seed in 0..5 {
            let mut policy = UniformPolicy::new(seed);
            let out = sim.run(Ticks::from_micros(100), &mut policy);
            let s = out.stats_for(TaskId::new(2)).unwrap();
            assert!(s.completed > 0);
            assert!(s.max <= rb3.wcrt, "observed {} > WCRT {}", s.max, rb3.wcrt);
            assert!(s.min >= rb3.bcrt, "observed {} < BCRT {}", s.min, rb3.bcrt);
        }
    }

    #[test]
    fn alternating_policy_creates_jitter() {
        let task = tb(0, 2, 6, 10);
        let sim = Simulator::new(vec![SimTask::new(task, 1)]);
        let out = sim.run(Ticks::new(100), &mut AlternatingPolicy);
        assert_eq!(out.stats[0].observed_jitter(), Ticks::new(4));
        assert_eq!(out.stats[0].observed_latency(), Ticks::new(2));
    }

    #[test]
    fn offset_delays_first_release() {
        let task = t(0, 1, 10);
        let sim = Simulator::new(vec![SimTask::with_offset(task, 1, Ticks::new(5))]);
        let out = sim
            .record_trace(true)
            .run(Ticks::new(30), &mut BestCasePolicy);
        assert_eq!(out.stats[0].completed, 3); // releases at 5, 15, 25
        match out.trace[0] {
            TraceEvent::Release { at, .. } => assert_eq!(at, Ticks::new(5)),
            _ => panic!("first event must be a release"),
        }
    }

    #[test]
    fn overload_counts_deadline_misses_and_terminates() {
        // Utilization 1.25: the low-priority task must miss.
        let sim = Simulator::new(vec![
            SimTask::new(t(0, 3, 4), 2),
            SimTask::new(t(1, 4, 8), 1),
        ]);
        let out = sim.run(Ticks::new(200), &mut WorstCasePolicy);
        assert!(out.stats[1].deadline_misses > 0);
    }

    #[test]
    fn trace_slices_are_contiguous_and_ordered() {
        let sim = Simulator::new(vec![
            SimTask::new(t(0, 1, 3), 2),
            SimTask::new(t(1, 3, 9), 1),
        ])
        .record_trace(true);
        let out = sim.run(Ticks::new(27), &mut WorstCasePolicy);
        let mut last_end = Ticks::ZERO;
        for e in &out.trace {
            if let TraceEvent::Run { from, to, .. } = e {
                assert!(from < to, "empty run slice");
                assert!(*from >= last_end, "run slices must not overlap");
                last_end = *to;
            }
        }
        // Processor is busy 1/3 + 3/9 = 2/3 of the time: total run time 18.
        let busy: u64 = out
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Run { from, to, .. } => Some(to.get() - from.get()),
                _ => None,
            })
            .sum();
        assert_eq!(busy, 18);
    }

    #[test]
    #[should_panic(expected = "priorities must be unique")]
    fn duplicate_priorities_panic() {
        let _ = Simulator::new(vec![
            SimTask::new(t(0, 1, 4), 1),
            SimTask::new(t(1, 1, 5), 1),
        ]);
    }

    #[test]
    fn fifo_within_task_on_overrun() {
        // Heavy interference makes the low-priority task overrun its
        // period, so two of its jobs are simultaneously active; they must
        // complete in release order (FIFO within a task).
        // hi: c=3 h=4 (prio 2); lo: c=2 h=5 (prio 1).
        // Hand schedule: hi [0,3)[4,7)[8,11)[12,15); lo0 [3,4)+[7,8) done
        // at 8 (response 8); lo1 [11,12)+[15,16) done at 16 (response 11).
        let sim = Simulator::new(vec![
            SimTask::new(t(0, 3, 4), 2),
            SimTask::new(t(1, 2, 5), 1),
        ])
        .record_trace(true);
        let out = sim.run(Ticks::new(16), &mut WorstCasePolicy);
        let lo_completions: Vec<_> = out
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Completion {
                    at,
                    response,
                    task_id,
                } if *task_id == TaskId::new(1) => Some((*at, *response)),
                _ => None,
            })
            .collect();
        assert_eq!(lo_completions.len(), 2);
        assert_eq!(lo_completions[0], (Ticks::new(8), Ticks::new(8)));
        assert_eq!(lo_completions[1], (Ticks::new(16), Ticks::new(11)));
        assert_eq!(out.stats[1].deadline_misses, 2);
    }
}
