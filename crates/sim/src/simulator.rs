//! Simulator types and the public fixed-priority simulation API.
//!
//! The simulator advances exact integer time between two kinds of events —
//! job releases and job completions — always running the highest-priority
//! ready job, preempting instantly on releases. It validates the analytical
//! response-time bounds from `csa-rta` and provides observed
//! latency/jitter for the examples.
//!
//! [`Simulator::run`] executes on the event-queue core (`event_core.rs`,
//! DESIGN.md §12): a flipped-`Ord` binary-heap release queue plus a
//! priority-indexed ready structure, so each scheduling event costs
//! O(log n) instead of three O(n) scans. The original scan-based loop is
//! retained verbatim as [`crate::reference::run`] and pinned bit-identical
//! by the differential proptest suite (`tests/differential.rs`).

use crate::policy::ExecutionPolicy;
use csa_rta::{Task, TaskId, Ticks};

/// A task plus its fixed priority. Larger [`SimTask::priority`] values
/// preempt smaller ones, matching the paper's `rho_i > rho_j` convention.
#[derive(Debug, Clone, Copy)]
pub struct SimTask {
    /// The periodic task.
    pub task: Task,
    /// Scheduling priority; must be unique within a simulation.
    pub priority: u32,
    /// Release offset of the first job (0 = synchronous/critical instant).
    pub offset: Ticks,
}

impl SimTask {
    /// Creates a simulation task with zero offset.
    pub fn new(task: Task, priority: u32) -> Self {
        SimTask {
            task,
            priority,
            offset: Ticks::ZERO,
        }
    }

    /// Creates a simulation task with a release offset.
    pub fn with_offset(task: Task, priority: u32, offset: Ticks) -> Self {
        SimTask {
            task,
            priority,
            offset,
        }
    }
}

/// Observed per-task response-time statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseStats {
    /// Task these statistics belong to.
    pub task_id: TaskId,
    /// Number of completed jobs.
    pub completed: u64,
    /// Smallest observed response time (observed best case).
    pub min: Ticks,
    /// Largest observed response time (observed worst case).
    pub max: Ticks,
    /// Sum of response times (for means).
    pub total: Ticks,
    /// Number of jobs that finished after their implicit deadline.
    pub deadline_misses: u64,
    /// Jobs released before the horizon but still unfinished at it.
    ///
    /// These contribute no response-time statistics, but hyperperiod-scale
    /// runs need the honest completion denominator `completed + in_flight`
    /// (mirroring the sweep orchestrator's quarantined-count convention).
    pub in_flight: u64,
}

impl ResponseStats {
    /// Observed latency: the minimum response time (cf. Eq. 2).
    pub fn observed_latency(&self) -> Ticks {
        self.min
    }

    /// Observed response-time jitter: `max - min` (cf. Eq. 2).
    pub fn observed_jitter(&self) -> Ticks {
        self.max - self.min
    }

    /// Mean response time in seconds.
    pub fn mean_secs(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total.as_secs_f64() / self.completed as f64
        }
    }
}

/// One entry of a recorded schedule trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A job of `task_id` was released.
    Release {
        /// Release instant.
        at: Ticks,
        /// Task released.
        task_id: TaskId,
    },
    /// The processor started (or resumed) executing a job.
    Run {
        /// Start of the execution slice.
        from: Ticks,
        /// End of the execution slice.
        to: Ticks,
        /// Task executing.
        task_id: TaskId,
    },
    /// A job of `task_id` completed with the given response time.
    Completion {
        /// Completion instant.
        at: Ticks,
        /// Task completed.
        task_id: TaskId,
        /// Response time of the completed job.
        response: Ticks,
    },
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// Per-task statistics, in the order tasks were supplied.
    pub stats: Vec<ResponseStats>,
    /// Recorded trace (empty unless tracing was enabled).
    ///
    /// With [`Simulator::record_trace_capped`] this holds the *last*
    /// `cap` events in order; `trace_dropped` counts the evicted prefix.
    pub trace: Vec<TraceEvent>,
    /// Events evicted from a capped trace (0 for uncapped traces).
    pub trace_dropped: u64,
    /// Time at which the simulation stopped.
    pub horizon: Ticks,
}

impl SimOutcome {
    /// Statistics for a given task id, if it was part of the simulation.
    pub fn stats_for(&self, id: TaskId) -> Option<&ResponseStats> {
        self.stats.iter().find(|s| s.task_id == id)
    }
}

/// Why a [`Simulator`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The task set was empty.
    EmptyTaskSet,
    /// Two tasks share a priority, making the schedule ambiguous.
    DuplicatePriority {
        /// The shared priority value.
        priority: u32,
        /// One of the tasks carrying it.
        first: TaskId,
        /// Another task carrying it.
        second: TaskId,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SimError::EmptyTaskSet => write!(f, "need at least one task"),
            SimError::DuplicatePriority {
                priority,
                first,
                second,
            } => write!(
                f,
                "priorities must be unique: {first} and {second} both have priority {priority}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Trace collector shared by the event core and the reference loop, so
/// capped-trace truncation is bit-identical in both by construction.
#[derive(Debug)]
pub(crate) struct TraceSink {
    enabled: bool,
    cap: Option<usize>,
    buf: Vec<TraceEvent>,
    /// Ring start once `buf` reached the cap (oldest retained event).
    head: usize,
    dropped: u64,
}

impl TraceSink {
    pub(crate) fn new(enabled: bool, cap: Option<usize>) -> Self {
        TraceSink {
            enabled,
            cap,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        match self.cap {
            Some(0) => self.dropped += 1,
            Some(cap) if self.buf.len() == cap => {
                self.buf[self.head] = event;
                self.head = (self.head + 1) % cap;
                self.dropped += 1;
            }
            _ => self.buf.push(event),
        }
    }

    /// Returns the retained events in chronological order plus the count
    /// of evicted ones.
    pub(crate) fn finish(mut self) -> (Vec<TraceEvent>, u64) {
        self.buf.rotate_left(self.head);
        (self.buf, self.dropped)
    }
}

/// Fresh per-run statistics rows, one per task in supplied order.
pub(crate) fn init_stats(tasks: &[SimTask]) -> Vec<ResponseStats> {
    tasks
        .iter()
        .map(|t| ResponseStats {
            task_id: t.task.id(),
            completed: 0,
            min: Ticks::MAX,
            max: Ticks::ZERO,
            total: Ticks::ZERO,
            deadline_misses: 0,
            in_flight: 0,
        })
        .collect()
}

/// Normalizes empty statistics rows (min stays MAX if nothing completed).
pub(crate) fn finalize_stats(stats: &mut [ResponseStats]) {
    for s in stats {
        if s.completed == 0 {
            s.min = Ticks::ZERO;
        }
    }
}

/// Fixed-priority preemptive simulator.
///
/// # Examples
///
/// ```
/// use csa_rta::{Task, TaskId, Ticks};
/// use csa_sim::{Simulator, SimTask, WorstCasePolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let hi = SimTask::new(Task::with_fixed_execution(TaskId::new(0), Ticks::new(1), Ticks::new(4))?, 2);
/// let lo = SimTask::new(Task::with_fixed_execution(TaskId::new(1), Ticks::new(2), Ticks::new(10))?, 1);
/// let outcome = Simulator::new(vec![hi, lo])?
///     .run(Ticks::new(40), &mut WorstCasePolicy);
/// // The low-priority task's first job sees one preemption: response 3.
/// assert_eq!(outcome.stats[1].max, Ticks::new(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    pub(crate) tasks: Vec<SimTask>,
    pub(crate) record_trace: bool,
    pub(crate) trace_cap: Option<usize>,
    /// `rank_of[i]` = priority rank of task `i` (0 = lowest priority,
    /// `n - 1` = highest); the key used by the event core's ready index.
    pub(crate) rank_of: Vec<usize>,
    /// Inverse of `rank_of`: the task index holding each rank.
    pub(crate) task_at_rank: Vec<usize>,
}

impl Simulator {
    /// Creates a simulator over the given prioritized tasks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyTaskSet`] for an empty slice and
    /// [`SimError::DuplicatePriority`] when two tasks share a priority
    /// (the schedule would be ambiguous). Detection sorts the priorities
    /// once — O(n log n) instead of the earlier all-pairs scan — and the
    /// same sorted order seeds the event core's priority ranks.
    pub fn new(tasks: Vec<SimTask>) -> Result<Self, SimError> {
        if tasks.is_empty() {
            return Err(SimError::EmptyTaskSet);
        }
        let n = tasks.len();
        let mut task_at_rank: Vec<usize> = (0..n).collect();
        // Stable by priority; ties would be adjacent after the sort.
        task_at_rank.sort_by_key(|&i| tasks[i].priority);
        for pair in task_at_rank.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if tasks[a].priority == tasks[b].priority {
                return Err(SimError::DuplicatePriority {
                    priority: tasks[a].priority,
                    first: tasks[a].task.id(),
                    second: tasks[b].task.id(),
                });
            }
        }
        let mut rank_of = vec![0usize; n];
        for (rank, &i) in task_at_rank.iter().enumerate() {
            rank_of[i] = rank;
        }
        Ok(Simulator {
            tasks,
            record_trace: false,
            trace_cap: None,
            rank_of,
            task_at_rank,
        })
    }

    /// Enables trace recording (releases, execution slices, completions)
    /// with an unbounded buffer.
    pub fn record_trace(mut self, enable: bool) -> Self {
        self.record_trace = enable;
        self.trace_cap = None;
        self
    }

    /// Enables trace recording bounded to the most recent `cap` events.
    ///
    /// Long-horizon runs stay bounded-memory: once `cap` events have been
    /// recorded the oldest are evicted ring-buffer style, and
    /// [`SimOutcome::trace_dropped`] reports how many were lost. A `cap`
    /// of 0 records nothing but still counts the events it would have
    /// kept.
    pub fn record_trace_capped(mut self, cap: usize) -> Self {
        self.record_trace = true;
        self.trace_cap = Some(cap);
        self
    }

    pub(crate) fn trace_sink(&self) -> TraceSink {
        TraceSink::new(self.record_trace, self.trace_cap)
    }

    /// Runs the simulation until `horizon`, drawing execution times from
    /// `policy`.
    ///
    /// Jobs released before the horizon but unfinished at it contribute no
    /// response-time statistics; they are counted per task in
    /// [`ResponseStats::in_flight`]. Deadline misses do not abort the job
    /// — the overrunning job keeps executing at its priority and the miss
    /// is counted, letting over-utilized sets run to the horizon.
    ///
    /// Executes on the event-queue core; semantics (including the trace
    /// and the order of policy calls) are bit-identical to
    /// [`crate::reference::run`].
    pub fn run<P: ExecutionPolicy + ?Sized>(&self, horizon: Ticks, policy: &mut P) -> SimOutcome {
        crate::event_core::run(self, horizon, policy)
    }

    /// Draws (and clamps) the execution time for one job release.
    pub(crate) fn execution_time<P: ExecutionPolicy + ?Sized>(
        &self,
        policy: &mut P,
        task_index: usize,
        job_index: u64,
    ) -> Ticks {
        let task = &self.tasks[task_index].task;
        let c = policy.execution_time(task, job_index);
        debug_assert!(
            c >= task.c_best() && c <= task.c_worst(),
            "policy returned {c} outside [{}, {}] for {}",
            task.c_best(),
            task.c_worst(),
            task.id()
        );
        c.max(task.c_best()).min(task.c_worst())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AlternatingPolicy, BestCasePolicy, UniformPolicy, WorstCasePolicy};
    use csa_rta::{response_bounds, Task, TaskId};

    fn t(id: u32, c: u64, h: u64) -> Task {
        Task::with_fixed_execution(TaskId::new(id), Ticks::new(c), Ticks::new(h)).unwrap()
    }

    fn tb(id: u32, cb: u64, cw: u64, h: u64) -> Task {
        Task::new(
            TaskId::new(id),
            Ticks::new(cb),
            Ticks::new(cw),
            Ticks::new(h),
        )
        .unwrap()
    }

    fn sim(tasks: Vec<SimTask>) -> Simulator {
        Simulator::new(tasks).expect("valid task set")
    }

    #[test]
    fn single_task_response_is_execution_time() {
        let sim = sim(vec![SimTask::new(t(0, 3, 10), 1)]);
        let out = sim.run(Ticks::new(100), &mut WorstCasePolicy);
        assert_eq!(out.stats[0].completed, 10);
        assert_eq!(out.stats[0].min, Ticks::new(3));
        assert_eq!(out.stats[0].max, Ticks::new(3));
        assert_eq!(out.stats[0].deadline_misses, 0);
        assert_eq!(out.stats[0].in_flight, 0);
    }

    #[test]
    fn two_task_hand_schedule() {
        // hi: c=1 h=4; lo: c=2 h=10 synchronous.
        // Schedule: [0,1) hi, [1,3) lo done at 3 (response 3).
        // Second lo job at 10: hi released at 12 preempts? lo runs [10,12)
        // done at 12 response 2: wait hi releases at 8 runs [8,9), then
        // idle; at 10 lo released, runs [10,12), hi at 12 — lo already
        // done exactly at 12.
        let sim = sim(vec![
            SimTask::new(t(0, 1, 4), 2),
            SimTask::new(t(1, 2, 10), 1),
        ])
        .record_trace(true);
        let out = sim.run(Ticks::new(20), &mut WorstCasePolicy);
        let lo = out.stats_for(TaskId::new(1)).unwrap();
        assert_eq!(lo.completed, 2);
        assert_eq!(lo.max, Ticks::new(3));
        assert_eq!(lo.min, Ticks::new(2));
        assert!(!out.trace.is_empty());
        assert_eq!(out.trace_dropped, 0);
    }

    #[test]
    fn critical_instant_reproduces_wcrt() {
        // Synchronous release with worst-case execution: the first job of
        // the lowest-priority task must exhibit exactly the analytical WCRT.
        let t1 = t(0, 1, 4);
        let t2 = t(1, 2, 6);
        let t3 = t(2, 3, 10);
        let rb = response_bounds(&t3, &[t1, t2]).unwrap();
        let sim = sim(vec![
            SimTask::new(t1, 3),
            SimTask::new(t2, 2),
            SimTask::new(t3, 1),
        ]);
        let out = sim.run(Ticks::new(10), &mut WorstCasePolicy);
        assert_eq!(out.stats[2].max, rb.wcrt);
    }

    #[test]
    fn responses_within_analytical_bounds() {
        let t1 = tb(0, 1, 2, 7);
        let t2 = tb(1, 1, 3, 13);
        let t3 = tb(2, 2, 4, 31);
        let rb3 = response_bounds(&t3, &[t1, t2]).unwrap();
        let sim = sim(vec![
            SimTask::new(t1, 3),
            SimTask::new(t2, 2),
            SimTask::new(t3, 1),
        ]);
        for seed in 0..5 {
            let mut policy = UniformPolicy::new(seed);
            let out = sim.run(Ticks::from_micros(100), &mut policy);
            let s = out.stats_for(TaskId::new(2)).unwrap();
            assert!(s.completed > 0);
            assert!(s.max <= rb3.wcrt, "observed {} > WCRT {}", s.max, rb3.wcrt);
            assert!(s.min >= rb3.bcrt, "observed {} < BCRT {}", s.min, rb3.bcrt);
        }
    }

    #[test]
    fn alternating_policy_creates_jitter() {
        let task = tb(0, 2, 6, 10);
        let sim = sim(vec![SimTask::new(task, 1)]);
        let out = sim.run(Ticks::new(100), &mut AlternatingPolicy);
        assert_eq!(out.stats[0].observed_jitter(), Ticks::new(4));
        assert_eq!(out.stats[0].observed_latency(), Ticks::new(2));
    }

    #[test]
    fn offset_delays_first_release() {
        let task = t(0, 1, 10);
        let sim = sim(vec![SimTask::with_offset(task, 1, Ticks::new(5))]);
        let out = sim
            .record_trace(true)
            .run(Ticks::new(30), &mut BestCasePolicy);
        assert_eq!(out.stats[0].completed, 3); // releases at 5, 15, 25
        match out.trace[0] {
            TraceEvent::Release { at, .. } => assert_eq!(at, Ticks::new(5)),
            _ => panic!("first event must be a release"),
        }
    }

    #[test]
    fn overload_counts_deadline_misses_and_terminates() {
        // Utilization 1.25: the low-priority task must miss.
        let sim = sim(vec![
            SimTask::new(t(0, 3, 4), 2),
            SimTask::new(t(1, 4, 8), 1),
        ]);
        let out = sim.run(Ticks::new(200), &mut WorstCasePolicy);
        assert!(out.stats[1].deadline_misses > 0);
        // Over-utilization leaves backlog at the horizon.
        assert!(out.stats[1].in_flight > 0);
    }

    #[test]
    fn trace_slices_are_contiguous_and_ordered() {
        let sim = sim(vec![
            SimTask::new(t(0, 1, 3), 2),
            SimTask::new(t(1, 3, 9), 1),
        ])
        .record_trace(true);
        let out = sim.run(Ticks::new(27), &mut WorstCasePolicy);
        let mut last_end = Ticks::ZERO;
        for e in &out.trace {
            if let TraceEvent::Run { from, to, .. } = e {
                assert!(from < to, "empty run slice");
                assert!(*from >= last_end, "run slices must not overlap");
                last_end = *to;
            }
        }
        // Processor is busy 1/3 + 3/9 = 2/3 of the time: total run time 18.
        let busy: u64 = out
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Run { from, to, .. } => Some(to.get() - from.get()),
                _ => None,
            })
            .sum();
        assert_eq!(busy, 18);
    }

    #[test]
    fn duplicate_priorities_are_rejected() {
        let err = Simulator::new(vec![
            SimTask::new(t(0, 1, 4), 1),
            SimTask::new(t(1, 1, 5), 1),
        ])
        .unwrap_err();
        match err {
            SimError::DuplicatePriority { priority, .. } => assert_eq!(priority, 1),
            other => panic!("expected DuplicatePriority, got {other:?}"),
        }
        assert!(err.to_string().contains("priorities must be unique"));
    }

    #[test]
    fn empty_task_set_is_rejected() {
        assert_eq!(Simulator::new(vec![]).unwrap_err(), SimError::EmptyTaskSet);
    }

    #[test]
    fn fifo_within_task_on_overrun() {
        // Heavy interference makes the low-priority task overrun its
        // period, so two of its jobs are simultaneously active; they must
        // complete in release order (FIFO within a task).
        // hi: c=3 h=4 (prio 2); lo: c=2 h=5 (prio 1).
        // Hand schedule: hi [0,3)[4,7)[8,11)[12,15); lo0 [3,4)+[7,8) done
        // at 8 (response 8); lo1 [11,12)+[15,16) done at 16 (response 11).
        let sim = sim(vec![
            SimTask::new(t(0, 3, 4), 2),
            SimTask::new(t(1, 2, 5), 1),
        ])
        .record_trace(true);
        let out = sim.run(Ticks::new(16), &mut WorstCasePolicy);
        let lo_completions: Vec<_> = out
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Completion {
                    at,
                    response,
                    task_id,
                } if *task_id == TaskId::new(1) => Some((*at, *response)),
                _ => None,
            })
            .collect();
        assert_eq!(lo_completions.len(), 2);
        assert_eq!(lo_completions[0], (Ticks::new(8), Ticks::new(8)));
        assert_eq!(lo_completions[1], (Ticks::new(16), Ticks::new(11)));
        assert_eq!(out.stats[1].deadline_misses, 2);
    }

    #[test]
    fn capped_trace_keeps_last_events_in_order() {
        let tasks = vec![SimTask::new(t(0, 3, 10), 1)];
        let full = sim(tasks.clone())
            .record_trace(true)
            .run(Ticks::new(100), &mut WorstCasePolicy);
        let capped = sim(tasks)
            .record_trace_capped(7)
            .run(Ticks::new(100), &mut WorstCasePolicy);
        assert_eq!(capped.trace.len(), 7);
        assert_eq!(
            capped.trace_dropped as usize,
            full.trace.len() - capped.trace.len()
        );
        // The retained suffix matches the tail of the full trace.
        assert_eq!(capped.trace[..], full.trace[full.trace.len() - 7..]);
        // Statistics are unaffected by the trace cap.
        assert_eq!(capped.stats, full.stats);
    }

    #[test]
    fn zero_capped_trace_counts_without_storing() {
        let out = sim(vec![SimTask::new(t(0, 3, 10), 1)])
            .record_trace_capped(0)
            .run(Ticks::new(100), &mut WorstCasePolicy);
        assert!(out.trace.is_empty());
        assert_eq!(out.trace_dropped, 30); // 10 releases + 10 runs + 10 completions
    }

    #[test]
    fn cap_larger_than_trace_drops_nothing() {
        let tasks = vec![SimTask::new(t(0, 3, 10), 1)];
        let full = sim(tasks.clone())
            .record_trace(true)
            .run(Ticks::new(100), &mut WorstCasePolicy);
        let capped = sim(tasks)
            .record_trace_capped(10_000)
            .run(Ticks::new(100), &mut WorstCasePolicy);
        assert_eq!(capped.trace, full.trace);
        assert_eq!(capped.trace_dropped, 0);
    }
}
