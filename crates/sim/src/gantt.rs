//! ASCII Gantt rendering of schedule traces.
//!
//! Turns a recorded [`TraceEvent`](crate::TraceEvent) stream into a
//! fixed-width text chart — enough to *see* preemption, response-time
//! variation, and the jitter the paper's stability analysis is about.

use crate::simulator::TraceEvent;
use csa_rta::{TaskId, Ticks};
use std::fmt::Write as _;

/// Renders the trace as one row of `width` characters per task over
/// `[0, horizon)`: `#` where the task executes, `|` at releases on idle
/// cells, `.` elsewhere.
///
/// Tasks are listed in the order of `task_ids`; events for other ids are
/// ignored. Truncated traces (from
/// [`Simulator::record_trace_capped`](crate::Simulator::record_trace_capped))
/// render gracefully: cells before the first retained event simply stay
/// `.`, so a capped trace shows the tail of the schedule.
///
/// # Panics
///
/// Panics if `width == 0` or `horizon` is zero.
///
/// # Examples
///
/// ```
/// use csa_rta::{Task, TaskId, Ticks};
/// use csa_sim::{render_gantt, SimTask, Simulator, WorstCasePolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let hi = SimTask::new(Task::with_fixed_execution(TaskId::new(0), Ticks::new(1), Ticks::new(4))?, 2);
/// let lo = SimTask::new(Task::with_fixed_execution(TaskId::new(1), Ticks::new(2), Ticks::new(8))?, 1);
/// let out = Simulator::new(vec![hi, lo])?.record_trace(true).run(Ticks::new(16), &mut WorstCasePolicy);
/// let chart = render_gantt(&out.trace, &[TaskId::new(0), TaskId::new(1)], Ticks::new(16), 16);
/// assert!(chart.contains("tau_0"));
/// # Ok(())
/// # }
/// ```
pub fn render_gantt(
    trace: &[TraceEvent],
    task_ids: &[TaskId],
    horizon: Ticks,
    width: usize,
) -> String {
    assert!(width > 0, "width must be positive");
    assert!(!horizon.is_zero(), "horizon must be positive");
    let cell = |t: Ticks| -> usize {
        ((t.get() as u128 * width as u128) / horizon.get() as u128).min(width as u128 - 1) as usize
    };
    let mut out = String::new();
    for &id in task_ids {
        let mut row = vec!['.'; width];
        for e in trace {
            match *e {
                TraceEvent::Run { from, to, task_id } if task_id == id => {
                    let (a, b) = (cell(from), cell(to.saturating_sub(Ticks::new(1))));
                    for c in row.iter_mut().take(b + 1).skip(a) {
                        *c = '#';
                    }
                }
                TraceEvent::Release { at, task_id } if task_id == id => {
                    let c = cell(at);
                    if row[c] == '.' {
                        row[c] = '|';
                    }
                }
                _ => {}
            }
        }
        let _ = writeln!(
            out,
            "{:<8} {}",
            id.to_string(),
            row.iter().collect::<String>()
        );
    }
    let _ = writeln!(
        out,
        "{:<8} 0{:>width$}",
        "",
        format!("{horizon}"),
        width = width - 1
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WorstCasePolicy;
    use crate::simulator::{SimTask, Simulator};
    use csa_rta::Task;

    #[test]
    fn renders_expected_pattern() {
        // Single task c=2 h=4 over horizon 8, width 8: executes cells
        // 0-1 and 4-5.
        let task =
            Task::with_fixed_execution(TaskId::new(0), Ticks::new(2), Ticks::new(4)).unwrap();
        let out = Simulator::new(vec![SimTask::new(task, 1)])
            .unwrap()
            .record_trace(true)
            .run(Ticks::new(8), &mut WorstCasePolicy);
        let chart = render_gantt(&out.trace, &[TaskId::new(0)], Ticks::new(8), 8);
        let row = chart.lines().next().unwrap();
        assert!(row.contains("##..##.."), "chart row: {row}");
    }

    #[test]
    fn truncated_trace_renders_tail_only() {
        // Same schedule, but keep only the last few events: the early
        // cells degrade to idle instead of breaking the renderer.
        let task =
            Task::with_fixed_execution(TaskId::new(0), Ticks::new(2), Ticks::new(4)).unwrap();
        let out = Simulator::new(vec![SimTask::new(task, 1)])
            .unwrap()
            .record_trace_capped(2)
            .run(Ticks::new(8), &mut WorstCasePolicy);
        assert!(out.trace_dropped > 0);
        let chart = render_gantt(&out.trace, &[TaskId::new(0)], Ticks::new(8), 8);
        let row = chart.lines().next().unwrap();
        // Only the second job's run slice (cells 4-5) survives the cap.
        assert!(row.contains("....##.."), "chart row: {row}");
    }

    #[test]
    fn preemption_is_visible() {
        let hi = Task::with_fixed_execution(TaskId::new(0), Ticks::new(2), Ticks::new(8)).unwrap();
        let lo = Task::with_fixed_execution(TaskId::new(1), Ticks::new(9), Ticks::new(16)).unwrap();
        let out = Simulator::new(vec![SimTask::new(hi, 2), SimTask::new(lo, 1)])
            .unwrap()
            .record_trace(true)
            .run(Ticks::new(16), &mut WorstCasePolicy);
        let chart = render_gantt(
            &out.trace,
            &[TaskId::new(0), TaskId::new(1)],
            Ticks::new(16),
            16,
        );
        let lines: Vec<&str> = chart.lines().collect();
        // hi runs 0-1 and 8-9; lo runs 2-7, is preempted at 8-9, resumes
        // 10-12. The gap in the lo row is the preemption.
        assert!(lines[0].contains("##......##"), "hi row: {}", lines[0]);
        assert!(lines[1].contains("######..###"), "lo row: {}", lines[1]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        render_gantt(&[], &[], Ticks::new(1), 0);
    }
}
