//! Event-driven fixed-priority preemptive scheduler simulation.
//!
//! The paper's analysis (Eqs. 2–4) predicts worst- and best-case response
//! times; this crate provides the matching *executable* semantics: an
//! exact, integer-time, preemptive fixed-priority uniprocessor simulator
//! (its place in the layering: DESIGN.md §2).
//! It serves two roles in the reproduction:
//!
//! 1. **Cross-validation** — observed response times of any simulation must
//!    lie inside the analytical `[R_b, R_w]` interval, and a synchronous
//!    release with worst-case execution times must reproduce `R_w` exactly.
//! 2. **Demonstration** — the examples animate the anomalies on concrete
//!    schedules (observed latency/jitter per task, schedule traces).
//!
//! Since PR 8 the hot loop is an **event-queue core** (DESIGN.md §12):
//! a flipped-`Ord` binary-heap release queue plus a priority-bitmap ready
//! index make each scheduling event O(log n) instead of three O(n)
//! scans, which is what lets the `crossval` experiment execute witnesses
//! over full hyperperiods. The original scan loop survives as
//! [`reference::run`], pinned bit-identical by a differential proptest
//! suite.
//!
//! # Example
//!
//! ```
//! use csa_rta::{Task, TaskId, Ticks};
//! use csa_sim::{Simulator, SimTask, UniformPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tasks = vec![
//!     SimTask::new(Task::new(TaskId::new(0), Ticks::new(1), Ticks::new(2), Ticks::new(10))?, 2),
//!     SimTask::new(Task::new(TaskId::new(1), Ticks::new(3), Ticks::new(5), Ticks::new(25))?, 1),
//! ];
//! let outcome = Simulator::new(tasks)?.run(Ticks::from_micros(1), &mut UniformPolicy::new(42));
//! for s in &outcome.stats {
//!     println!("{}: latency {} jitter {}", s.task_id, s.observed_latency(), s.observed_jitter());
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod event_core;
mod gantt;
mod policy;
pub mod reference;
mod simulator;

pub use gantt::render_gantt;
pub use policy::{
    AlternatingPolicy, BestCasePolicy, ExecutionPolicy, UniformPolicy, WorstCasePolicy,
};
pub use simulator::{ResponseStats, SimError, SimOutcome, SimTask, Simulator, TraceEvent};
