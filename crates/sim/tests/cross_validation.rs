//! Property tests: the simulator must respect the analytical
//! response-time bounds from `csa-rta` on randomly generated task sets.

use csa_rta::{response_bounds, Task, TaskId, Ticks};
use csa_sim::{
    AlternatingPolicy, BestCasePolicy, SimTask, Simulator, UniformPolicy, WorstCasePolicy,
};
use proptest::prelude::*;

/// Generates a schedulable-ish set of up to 4 tasks with bounded
/// parameters, sorted by period (rate monotonic priorities).
fn small_task_set() -> impl Strategy<Value = Vec<Task>> {
    proptest::collection::vec((1u64..6, 10u64..60, 0u64..5), 1..4).prop_map(|specs| {
        let mut tasks: Vec<Task> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (c_worst, period, cut))| {
                let c_best = c_worst.saturating_sub(cut).max(1);
                Task::new(
                    TaskId::new(i as u32),
                    Ticks::new(c_best),
                    Ticks::new(c_worst),
                    Ticks::new(period),
                )
                .expect("valid by construction")
            })
            .collect();
        tasks.sort_by_key(|t| t.period());
        tasks
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn observed_responses_within_analytical_bounds(tasks in small_task_set(), seed in any::<u64>()) {
        let n = tasks.len();
        // Rate-monotonic priorities: earlier (shorter period) = higher.
        let sim_tasks: Vec<SimTask> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| SimTask::new(*t, (n - i) as u32))
            .collect();

        // Analytical bounds per task (None => skip the comparison).
        let bounds: Vec<_> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| response_bounds(t, &tasks[..i]))
            .collect();

        let sim = Simulator::new(sim_tasks).expect("unique priorities");
        let horizon = Ticks::new(20_000);
        for policy_id in 0..3 {
            let out = match policy_id {
                0 => sim.run(horizon, &mut WorstCasePolicy),
                1 => sim.run(horizon, &mut AlternatingPolicy),
                _ => sim.run(horizon, &mut UniformPolicy::new(seed)),
            };
            for (i, stat) in out.stats.iter().enumerate() {
                if let Some(rb) = bounds[i] {
                    prop_assert!(stat.completed > 0);
                    prop_assert!(
                        stat.max <= rb.wcrt,
                        "task {i}: observed max {} exceeds WCRT {} (policy {policy_id})",
                        stat.max, rb.wcrt
                    );
                    prop_assert!(
                        stat.min >= rb.bcrt,
                        "task {i}: observed min {} below BCRT {} (policy {policy_id})",
                        stat.min, rb.bcrt
                    );
                    prop_assert_eq!(stat.deadline_misses, 0);
                }
            }
        }
    }

    #[test]
    fn worst_case_critical_instant_is_tight(tasks in small_task_set()) {
        // With synchronous release and worst-case execution, the first job
        // of every schedulable task attains exactly its WCRT.
        let n = tasks.len();
        let sim_tasks: Vec<SimTask> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| SimTask::new(*t, (n - i) as u32))
            .collect();
        let sim = Simulator::new(sim_tasks).expect("unique priorities").record_trace(true);
        let horizon = tasks.iter().map(|t| t.period()).max().unwrap();
        let out = sim.run(horizon, &mut WorstCasePolicy);
        for (i, t) in tasks.iter().enumerate() {
            if let Some(rb) = response_bounds(t, &tasks[..i]) {
                // First completion of task i in the trace.
                let first = out.trace.iter().find_map(|e| match e {
                    csa_sim::TraceEvent::Completion { task_id, response, .. }
                        if *task_id == t.id() => Some(*response),
                    _ => None,
                });
                if let Some(resp) = first {
                    prop_assert_eq!(
                        resp, rb.wcrt,
                        "task {} first response {} != WCRT {}", i, resp, rb.wcrt
                    );
                }
            }
        }
    }

    #[test]
    fn best_case_policy_touches_bcrt_eventually(tasks in small_task_set()) {
        // With best-case execution everywhere, some job of each
        // schedulable task should reach a response at or above BCRT but
        // the minimum can never dip below it.
        let n = tasks.len();
        let sim_tasks: Vec<SimTask> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| SimTask::new(*t, (n - i) as u32))
            .collect();
        let sim = Simulator::new(sim_tasks).expect("unique priorities");
        let out = sim.run(Ticks::new(50_000), &mut BestCasePolicy);
        for (i, t) in tasks.iter().enumerate() {
            if let Some(rb) = response_bounds(t, &tasks[..i]) {
                let s = &out.stats[i];
                prop_assert!(s.min >= rb.bcrt);
            }
        }
    }
}
