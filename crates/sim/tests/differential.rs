//! Differential suite pinning the event-queue core bit-identical to the
//! retained scan-based loop (`csa_sim::reference`), plus the
//! hyperperiod-wraparound invariant.
//!
//! `Simulator::run` (event core) and `reference::run` must produce the
//! same `SimOutcome` — statistics, full trace, capped trace, and dropped
//! count — across random task sets, offsets, priority permutations,
//! execution policies, and horizons. Stateful policies (the seeded
//! uniform one) make the *order* of policy calls observable, so equality
//! here also pins the release-processing order.

use csa_rta::{hyperperiod, Task, TaskId, Ticks};
use csa_sim::{
    reference, AlternatingPolicy, BestCasePolicy, SimOutcome, SimTask, Simulator, UniformPolicy,
    WorstCasePolicy,
};
use proptest::prelude::*;

/// Deterministic Fisher–Yates permutation of `1..=n` (SplitMix64-driven),
/// used to assign unique priorities in a seed-controlled random order.
fn permuted_priorities(n: usize, seed: u64) -> Vec<u32> {
    let mut p: Vec<u32> = (1..=n as u32).collect();
    let mut z = seed;
    for i in (1..n).rev() {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let j = (x % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

/// Up to 9 tasks with arbitrary execution ranges, periods, and offsets
/// (schedulability not required — overload exercises FIFO backlogs).
fn task_specs() -> impl Strategy<Value = Vec<(u64, u64, u64, u64)>> {
    proptest::collection::vec((1u64..8, 1u64..8, 4u64..80, 0u64..30), 1..10)
}

fn build(specs: &[(u64, u64, u64, u64)], prio_seed: u64) -> Vec<SimTask> {
    let prios = permuted_priorities(specs.len(), prio_seed);
    specs
        .iter()
        .enumerate()
        .map(|(i, &(a, b, period, offset))| {
            let (cb, cw) = (a.min(b), a.max(b));
            let period = period.max(cw);
            let task = Task::new(
                TaskId::new(i as u32),
                Ticks::new(cb),
                Ticks::new(cw),
                Ticks::new(period),
            )
            .expect("valid by construction");
            SimTask::with_offset(task, prios[i], Ticks::new(offset))
        })
        .collect()
}

/// Runs one of the four policies on either the event core or the
/// reference loop. Stateful policies are constructed fresh per call so
/// both cores see identical streams.
fn run_with(sim: &Simulator, horizon: Ticks, policy_id: u8, seed: u64, event: bool) -> SimOutcome {
    match policy_id % 4 {
        0 => {
            let mut p = WorstCasePolicy;
            if event {
                sim.run(horizon, &mut p)
            } else {
                reference::run(sim, horizon, &mut p)
            }
        }
        1 => {
            let mut p = BestCasePolicy;
            if event {
                sim.run(horizon, &mut p)
            } else {
                reference::run(sim, horizon, &mut p)
            }
        }
        2 => {
            let mut p = AlternatingPolicy;
            if event {
                sim.run(horizon, &mut p)
            } else {
                reference::run(sim, horizon, &mut p)
            }
        }
        _ => {
            let mut p = UniformPolicy::new(seed);
            if event {
                sim.run(horizon, &mut p)
            } else {
                reference::run(sim, horizon, &mut p)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn event_core_bit_identical_to_reference(
        specs in task_specs(),
        prio_seed in any::<u64>(),
        policy_id in 0u8..4,
        policy_seed in any::<u64>(),
        horizon in 0u64..4000,
    ) {
        let tasks = build(&specs, prio_seed);
        let sim = Simulator::new(tasks).expect("unique priorities").record_trace(true);
        let horizon = Ticks::new(horizon);
        let event = run_with(&sim, horizon, policy_id, policy_seed, true);
        let reference = run_with(&sim, horizon, policy_id, policy_seed, false);
        prop_assert_eq!(event, reference);
    }

    #[test]
    fn capped_traces_match_between_cores(
        specs in task_specs(),
        prio_seed in any::<u64>(),
        policy_seed in any::<u64>(),
        cap in 0usize..40,
        horizon in 1u64..3000,
    ) {
        let tasks = build(&specs, prio_seed);
        let sim = Simulator::new(tasks).expect("unique priorities").record_trace_capped(cap);
        let horizon = Ticks::new(horizon);
        let event = run_with(&sim, horizon, 3, policy_seed, true);
        let reference = run_with(&sim, horizon, 3, policy_seed, false);
        prop_assert_eq!(&event, &reference);
        prop_assert!(event.trace.len() <= cap);
        // The capped trace is the tail of the uncapped one.
        let full = run_with(
            &sim.clone().record_trace(true), horizon, 3, policy_seed, true,
        );
        let tail = &full.trace[full.trace.len() - event.trace.len()..];
        prop_assert_eq!(&event.trace[..], tail);
        prop_assert_eq!(
            event.trace_dropped as usize,
            full.trace.len() - event.trace.len()
        );
    }
}

/// Synchronous task sets whose worst-case demand fits the hyperperiod
/// (`U <= 1`), built from a small period menu so `H` stays tiny.
fn feasible_sync_specs() -> impl Strategy<Value = Vec<(u64, u64, usize)>> {
    proptest::collection::vec((1u64..4, 1u64..4, 0usize..6), 1..6).prop_filter(
        "worst-case demand must fit one hyperperiod",
        |specs| {
            let h = specs
                .iter()
                .map(|&(_, _, p)| PERIOD_MENU[p])
                .fold(1u64, lcm_u64);
            let demand: u64 = specs
                .iter()
                .map(|&(a, b, p)| a.max(b).min(PERIOD_MENU[p]) * (h / PERIOD_MENU[p]))
                .sum();
            demand <= h
        },
    )
}

const PERIOD_MENU: [u64; 6] = [2, 3, 4, 5, 6, 8];

fn lcm_u64(a: u64, b: u64) -> u64 {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    a / gcd(a, b) * b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Synchronous periodic sets with `U <= 1` leave zero backlog at the
    /// hyperperiod under any work-conserving fixed-priority schedule, so
    /// the schedule over `[H, 2H)` repeats `[0, H)` exactly: running to
    /// `2H` doubles `completed` and `total` and changes no extreme.
    /// (Only memoryless policies qualify — a job-index-dependent or
    /// stateful policy need not repeat its draws in the second lap.)
    #[test]
    fn synchronous_sets_wrap_around_at_the_hyperperiod(
        specs in feasible_sync_specs(),
        prio_seed in any::<u64>(),
        worst in any::<bool>(),
    ) {
        let prios = permuted_priorities(specs.len(), prio_seed);
        let tasks: Vec<SimTask> = specs
            .iter()
            .enumerate()
            .map(|(i, &(a, b, p))| {
                let period = PERIOD_MENU[p];
                let (cb, cw) = (a.min(b), a.max(b).min(period));
                let task = Task::new(
                    TaskId::new(i as u32),
                    Ticks::new(cb.min(cw)),
                    Ticks::new(cw),
                    Ticks::new(period),
                )
                .expect("valid by construction");
                SimTask::new(task, prios[i])
            })
            .collect();
        let h = hyperperiod(&tasks.iter().map(|t| t.task).collect::<Vec<_>>())
            .expect("small menu periods cannot overflow");
        let sim = Simulator::new(tasks).expect("unique priorities");
        let (one, two) = if worst {
            (
                sim.run(h, &mut WorstCasePolicy),
                sim.run(h + h, &mut WorstCasePolicy),
            )
        } else {
            (
                sim.run(h, &mut BestCasePolicy),
                sim.run(h + h, &mut BestCasePolicy),
            )
        };
        for (a, b) in one.stats.iter().zip(&two.stats) {
            prop_assert_eq!(a.in_flight, 0, "backlog at the hyperperiod");
            prop_assert_eq!(b.in_flight, 0);
            prop_assert_eq!(b.completed, 2 * a.completed);
            prop_assert_eq!(b.total, a.total + a.total);
            prop_assert_eq!(b.min, a.min);
            prop_assert_eq!(b.max, a.max);
            prop_assert_eq!(b.deadline_misses, 2 * a.deadline_misses);
        }
    }
}

/// The `BTreeSet` ready-index fallback (n > 64) stays bit-identical to
/// the reference loop too.
#[test]
fn large_task_set_uses_tree_fallback_and_matches_reference() {
    let tasks: Vec<SimTask> = (0..70u32)
        .map(|i| {
            let period = 600 + 37 * i as u64;
            let task = Task::new(
                TaskId::new(i),
                Ticks::new(1),
                Ticks::new(3),
                Ticks::new(period),
            )
            .expect("valid");
            SimTask::with_offset(task, 70 - i, Ticks::new((i as u64 * 13) % 200))
        })
        .collect();
    let sim = Simulator::new(tasks)
        .expect("unique priorities")
        .record_trace(true);
    for seed in 0..3 {
        let event = sim.run(Ticks::new(50_000), &mut UniformPolicy::new(seed));
        let oracle = reference::run(&sim, Ticks::new(50_000), &mut UniformPolicy::new(seed));
        assert_eq!(event, oracle, "seed {seed}");
        assert!(event.stats.iter().any(|s| s.completed > 0));
    }
}
