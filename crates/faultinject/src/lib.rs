//! Environment-driven fault injection for the sweep orchestrator.
//!
//! The checkpoint/resume and quarantine machinery in `csa-experiments`
//! (DESIGN.md §11) makes hard claims — a SIGKILL at any point loses at
//! most one shard, a panicking instance never aborts a sweep — that
//! unit-level mocks cannot honestly discharge: the failure has to
//! happen inside a *real* worker of a *real* subprocess. This crate is
//! the trigger. It is compiled into the experiment binaries only behind
//! the `faultinject` feature of `csa-experiments`, and it does nothing
//! at all unless the `CSA_FAULT_INJECT` environment variable is set.
//!
//! # Fault specification
//!
//! `CSA_FAULT_INJECT` holds a comma-separated list of `mode:n:index`
//! triples. When the orchestrator is about to evaluate benchmark
//! instance `index` of the `n`-task row, a matching triple fires:
//!
//! * `panic:n:index` — panics in the worker thread. The orchestrator
//!   must catch it and quarantine the instance (the sweep completes).
//! * `abort:n:index` — calls [`std::process::abort`]: an uncatchable
//!   hard crash (SIGABRT), standing in for OOM kills and power loss.
//!   The sweep dies mid-shard; only a checkpoint resume can finish it.
//!
//! The variable is read once per process and cached, so the hook costs
//! one relaxed atomic-free `OnceLock` access per instance when unset.
//!
//! # Example
//!
//! ```
//! use csa_faultinject::{FaultMode, FaultSpec};
//!
//! let specs = FaultSpec::parse_list("panic:4:7,abort:8:1000").unwrap();
//! assert_eq!(specs.len(), 2);
//! assert_eq!(specs[0], FaultSpec { mode: FaultMode::Panic, n: 4, index: 7 });
//! assert!(specs[0].matches(4, 7));
//! assert!(!specs[0].matches(4, 8));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::OnceLock;

/// Environment variable holding the fault list.
pub const FAULT_ENV: &str = "CSA_FAULT_INJECT";

/// What a matching fault does to the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic in the calling thread (catchable; exercises quarantine).
    Panic,
    /// `std::process::abort()` — a hard, uncatchable crash (exercises
    /// checkpoint resume under real process death).
    Abort,
}

impl FaultMode {
    /// Parses the mode token of a fault triple.
    pub fn parse(s: &str) -> Option<FaultMode> {
        match s {
            "panic" => Some(FaultMode::Panic),
            "abort" => Some(FaultMode::Abort),
            _ => None,
        }
    }
}

/// One injected fault: fire `mode` at instance `(n, index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What happens when the fault fires.
    pub mode: FaultMode,
    /// Task count of the sweep row the fault targets.
    pub n: usize,
    /// Instance index within the row.
    pub index: usize,
}

impl FaultSpec {
    /// Parses one `mode:n:index` triple.
    ///
    /// # Errors
    ///
    /// Describes the malformed field; the caller treats any error as a
    /// hard configuration mistake (a typo must not silently disable the
    /// fault a test depends on).
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [mode, n, index] = parts.as_slice() else {
            return Err(format!("fault {s:?}: expected mode:n:index"));
        };
        Ok(FaultSpec {
            mode: FaultMode::parse(mode)
                .ok_or_else(|| format!("fault {s:?}: unknown mode {mode:?} (panic|abort)"))?,
            n: n.parse()
                .map_err(|e| format!("fault {s:?}: bad n {n:?}: {e}"))?,
            index: index
                .parse()
                .map_err(|e| format!("fault {s:?}: bad index {index:?}: {e}"))?,
        })
    }

    /// Parses a comma-separated fault list (empty string = no faults).
    ///
    /// # Errors
    ///
    /// Propagates the first triple's parse error.
    pub fn parse_list(s: &str) -> Result<Vec<FaultSpec>, String> {
        s.split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(FaultSpec::parse)
            .collect()
    }

    /// Does this fault target instance `(n, index)`?
    pub fn matches(&self, n: usize, index: usize) -> bool {
        self.n == n && self.index == index
    }
}

fn active_faults() -> &'static [FaultSpec] {
    static FAULTS: OnceLock<Vec<FaultSpec>> = OnceLock::new();
    FAULTS.get_or_init(|| match std::env::var(FAULT_ENV) {
        Ok(v) => match FaultSpec::parse_list(&v) {
            Ok(specs) => specs,
            // A malformed spec is a loud configuration error: the test
            // that set it is counting on the fault actually firing.
            Err(e) => panic!("{FAULT_ENV}: {e}"),
        },
        Err(_) => Vec::new(),
    })
}

/// Fault hook, called by the orchestrator immediately before evaluating
/// benchmark instance `(n, index)`. Fires the first matching fault from
/// [`FAULT_ENV`]; a no-op (one cached-slice lookup) otherwise.
pub fn maybe_fault(n: usize, index: usize) {
    for f in active_faults() {
        if f.matches(n, index) {
            match f.mode {
                FaultMode::Panic => {
                    panic!("csa-faultinject: injected panic at instance n={n} index={index}")
                }
                FaultMode::Abort => {
                    eprintln!("csa-faultinject: injected abort at instance n={n} index={index}");
                    std::process::abort();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triples_parse_and_match() {
        let f = FaultSpec::parse("panic:4:7").unwrap();
        assert_eq!(f.mode, FaultMode::Panic);
        assert!(f.matches(4, 7));
        assert!(!f.matches(8, 7));
        let f = FaultSpec::parse("abort:16:123456").unwrap();
        assert_eq!(f.mode, FaultMode::Abort);
        assert_eq!((f.n, f.index), (16, 123_456));
    }

    #[test]
    fn malformed_triples_are_rejected_with_context() {
        for (spec, needle) in [
            ("panic:4", "expected mode:n:index"),
            ("soup:4:7", "unknown mode"),
            ("panic:x:7", "bad n"),
            ("panic:4:y", "bad index"),
        ] {
            let err = FaultSpec::parse(spec).expect_err(spec);
            assert!(err.contains(needle), "error {err:?} missing {needle:?}");
        }
    }

    #[test]
    fn lists_parse_with_blanks_skipped() {
        let specs = FaultSpec::parse_list(" panic:4:7 , abort:8:9 ,").unwrap();
        assert_eq!(specs.len(), 2);
        assert!(FaultSpec::parse_list("").unwrap().is_empty());
        assert!(FaultSpec::parse_list("panic:4:7,nope").is_err());
    }

    #[test]
    fn injected_panic_is_catchable() {
        // The quarantine path relies on the panic unwinding normally.
        let spec = FaultSpec::parse("panic:4:7").unwrap();
        let caught = std::panic::catch_unwind(|| {
            if spec.matches(4, 7) {
                panic!("csa-faultinject: injected panic at instance n=4 index=7");
            }
        });
        let payload = caught.expect_err("must panic");
        // A no-argument panic! carries &str; formatted ones carry String.
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected panic"), "payload {msg:?}");
    }
}
